package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir, rev string) *Ledger {
	t.Helper()
	l, err := Open(dir, rev)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func rec(workload string, ipc float64) Record {
	return Record{
		Tool: "test", Workload: workload, Series: "s", Input: "small",
		Cycles: 1000, Instrs: int64(1000 * ipc), IPC: ipc, WallMS: 5, Cache: "miss",
	}
}

func TestAppendRead(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, "r1")
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(fmt.Sprintf("w%d", i), 1.5)); err != nil {
			t.Fatal(err)
		}
	}
	recs, skipped, err := ReadDir(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadDir: %v (skipped %d)", err, skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	r := recs[1]
	if r.Workload != "w1" || r.Rev != "r1" || r.Time == "" || r.RunID == "" {
		t.Errorf("record not stamped: %+v", r)
	}
	if r.Host.Hostname != l.Host().Hostname || r.Host.Go == "" {
		t.Errorf("host fingerprint not stamped: %+v", r.Host)
	}
}

// TestRestartAppends is the durability contract: a second process opens the
// same ledger and appends — never clobbers — and both runs' records read
// back with distinct run IDs.
func TestRestartAppends(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Append(rec("w", 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, "b")
	if err := l2.Append(rec("w", 1.1)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := ReadDir(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadDir: %v (skipped %d)", err, skipped)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records after restart, want 2", len(recs))
	}
	if recs[0].Rev != "a" || recs[1].Rev != "b" || recs[0].RunID == recs[1].RunID {
		t.Errorf("restart records wrong: %+v", recs)
	}
}

// TestTruncatedTailSkipped simulates a crash mid-append: the torn tail
// record must be skipped on reopen with every prior record intact, and a
// subsequent append must land cleanly after the torn bytes.
func TestTruncatedTailSkipped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, "a")
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(fmt.Sprintf("w%d", i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its last 10 bytes (newline included).
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o666); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Fatalf("after truncation: %d records (want 2), %d skipped (want 1)", len(recs), skipped)
	}
	if recs[0].Workload != "w0" || recs[1].Workload != "w1" {
		t.Errorf("prior records damaged: %+v", recs)
	}

	// Reopen (repairs the missing newline) and append.
	l2 := mustOpen(t, dir, "b")
	if err := l2.Append(rec("w3", 2.0)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || skipped != 1 {
		t.Fatalf("after reopen+append: %d records (want 3), %d skipped (want 1)", len(recs), skipped)
	}
	if recs[2].Workload != "w3" {
		t.Errorf("post-crash append corrupted: %+v", recs[2])
	}
}

// TestCorruptLineSkipped flips a byte inside a middle record: that record
// alone fails its CRC; neighbours survive.
func TestCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, "a")
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(fmt.Sprintf("w%d", i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x20
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o666); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Fatalf("%d records (want 2), %d skipped (want 1)", len(recs), skipped)
	}
	if recs[0].Workload != "w0" || recs[1].Workload != "w2" {
		t.Errorf("wrong survivors: %+v", recs)
	}
}

// TestConcurrentAppends drives the ledger from a worker-pool's worth of
// goroutines (the sweep shape); every record must read back whole. Run
// under -race by `make race`.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, "a")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(rec(fmt.Sprintf("w%d-%d", k, i), 1.0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	recs, skipped, err := ReadDir(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("ReadDir: %v (skipped %d)", err, skipped)
	}
	if len(recs) != workers*each {
		t.Fatalf("read %d records, want %d", len(recs), workers*each)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.Workload] {
			t.Fatalf("duplicate record %q", r.Workload)
		}
		seen[r.Workload] = true
	}
}

func TestReadMissingFile(t *testing.T) {
	recs, skipped, err := ReadDir(t.TempDir())
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("missing ledger should read empty: %v %v %d", recs, err, skipped)
	}
}

func TestHostFingerprint(t *testing.T) {
	h := CurrentHost()
	if h.Go == "" || h.OS == "" || h.Arch == "" || h.GOMAXPROCS <= 0 || h.CPU == "" {
		t.Errorf("incomplete host fingerprint: %+v", h)
	}
	if !h.SameMachine(h) {
		t.Error("host must match itself")
	}
	other := h
	other.GOMAXPROCS = h.GOMAXPROCS + 1
	other.Go = "go0.0"
	if !h.SameMachine(other) {
		t.Error("GOMAXPROCS/Go version must not change machine identity")
	}
	other.Hostname = h.Hostname + "-x"
	if h.SameMachine(other) {
		t.Error("different hostname must differ")
	}
}
