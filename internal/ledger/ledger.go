// Package ledger is the persistent run history under the simulation
// service: an append-only, crash-safe, disk-backed record of every
// completed simulation task. Where the in-process caches (internal/simcache)
// make repeated work free within one invocation, the ledger makes results
// *comparable across invocations* — each record carries the task's
// content-addressed fingerprint, its headline metrics, the source revision
// and a host fingerprint, so two sweeps run days apart can be diffed
// per-(workload, series) and gated on regressions (cmd/mgstat -compare),
// and a sweep's ancestry browsed live (/debug/dash).
//
// Durability model: one file, <dir>/ledger.jsonl, opened O_APPEND. Each
// record is a single line "v1 <crc32c-hex8> <compact-json>\n" written in
// one Write call under a mutex, so concurrent appenders interleave whole
// lines. A crash mid-write leaves a torn tail that fails the CRC (or has
// no newline); readers skip it, and Open repairs a missing trailing
// newline before appending so the next record starts clean. Nothing is
// ever rewritten in place.
package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// FileName is the ledger file inside the -ledger directory.
const FileName = "ledger.jsonl"

// linePrefix tags every valid record line with the encoding version.
const linePrefix = "v1 "

// castagnoli is the CRC-32C table (same polynomial the trace index uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Host is the machine fingerprint stamped into every record: performance
// numbers are only comparable when these match (the benchjson baselines
// were bitten twice by cross-host diffs before this existed).
type Host struct {
	Hostname   string `json:"hostname"`
	CPU        string `json:"cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// SameMachine reports whether two fingerprints identify the same hardware
// (hostname, CPU model, OS, architecture — GOMAXPROCS and the Go version
// vary per invocation without the machine changing).
func (h Host) SameMachine(o Host) bool {
	return h.Hostname == o.Hostname && h.CPU == o.CPU && h.OS == o.OS && h.Arch == o.Arch
}

// Summary renders the fingerprint as one comparable line.
func (h Host) Summary() string {
	return fmt.Sprintf("%s (%s, %s/%s, GOMAXPROCS=%d, %s)",
		h.Hostname, h.CPU, h.OS, h.Arch, h.GOMAXPROCS, h.Go)
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	name, _ := os.Hostname()
	return Host{
		Hostname:   name,
		CPU:        cpuModel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// cpuModel reads the CPU model name from /proc/cpuinfo where available,
// falling back to the architecture tag.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok &&
				strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return "unknown (" + runtime.GOARCH + ")"
}

// DetectRev resolves the source revision for new records: the MG_REV
// environment variable when set (how make targets pin it), else the VCS
// revision stamped into the binary by `go build`, else "unknown". Drivers
// expose -ledger-rev to override.
func DetectRev() string {
	if v := os.Getenv("MG_REV"); v != "" {
		return v
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "unknown"
}

// Record is one completed simulation task. Cycles == 0 marks a
// non-timing record (e.g. an mgselect selection), which history queries
// keep but the compare gate ignores.
type Record struct {
	Time  string `json:"time"` // RFC3339Nano, UTC
	Rev   string `json:"rev"`
	RunID string `json:"run"`  // one ID per process invocation
	Tool  string `json:"tool"` // mgreport, mgsim, mgselect

	Sweep    string `json:"sweep,omitempty"` // sweep title, when part of one
	Workload string `json:"workload"`
	Series   string `json:"series"` // series label / config+selector identity
	Input    string `json:"input"`

	// Key is the content-addressed simulation fingerprint (the result-cache
	// key), tying the record to exactly the configuration that produced it.
	Key   string `json:"key,omitempty"`
	Cache string `json:"cache,omitempty"` // hit/miss/shared/traced/nocache

	// Estimate marks a sampled (low-fidelity) run: the metrics below are
	// statistical estimates, not exact simulation, and must never be
	// compared against exact records (the compare gate skips mixed pairs).
	// Sample carries the sampling-spec tag, e.g. "rep/i1000/w1000/k8".
	Estimate bool   `json:"estimate,omitempty"`
	Sample   string `json:"sample,omitempty"`

	WallMS float64 `json:"wall_ms"`

	// CPUMS is the task's consumed CPU time: a per-OS-thread rusage delta
	// measured on a pinned sweep worker (exact), or a whole-process delta
	// for single-task drivers. Unlike wall time it is robust to host load
	// and comparable across machines of similar class, so -gate-cpu uses it
	// as the default cost signal. 0 = not measured (old records, or a
	// platform without rusage).
	CPUMS float64 `json:"cpu_ms,omitempty"`
	// MaxRSSKB is the process resident-set high-water mark (KB) when the
	// task finished; process-wide and monotone within a run.
	MaxRSSKB int64 `json:"max_rss_kb,omitempty"`
	// GCCycles is the number of GC cycles completed while the task ran
	// (process-global: approximate when tasks run concurrently).
	GCCycles int64 `json:"gc_cycles,omitempty"`

	Cycles   int64   `json:"cycles,omitempty"`
	Instrs   int64   `json:"instrs,omitempty"`
	Uops     int64   `json:"uops,omitempty"`
	IPC      float64 `json:"ipc,omitempty"`
	UPC      float64 `json:"upc,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`

	// Critpath carries the cycle-loss bucket summary (bucket name →
	// critical-path cycles) when the task ran attribution.
	Critpath map[string]int64 `json:"critpath,omitempty"`

	Host  Host   `json:"host"`
	Error string `json:"error,omitempty"`
}

// PointKey identifies the series point a record measures — the grouping
// unit for history sparklines and cross-rev comparison.
func (r *Record) PointKey() string {
	return r.Workload + "\x00" + r.Series + "\x00" + r.Input
}

// Ledger is an open, appendable run history. Safe for concurrent use.
type Ledger struct {
	mu   sync.Mutex
	f    *os.File
	path string
	rev  string
	run  string
	host Host
}

// Open opens (creating as needed) the ledger in dir for appending. rev is
// stamped into every record this process appends; an empty rev means
// DetectRev. A pre-existing file is never truncated: a torn tail line left
// by a crash is terminated with a newline so subsequent records parse.
func Open(dir, rev string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	if err := repairTail(path, f); err != nil {
		f.Close()
		return nil, err
	}
	if rev == "" {
		rev = DetectRev()
	}
	return &Ledger{
		f:    f,
		path: path,
		rev:  rev,
		run:  fmt.Sprintf("%d-%d", time.Now().UnixNano(), os.Getpid()),
		host: CurrentHost(),
	}, nil
}

// repairTail terminates an unterminated final line (a torn write from a
// crashed process) so the next append starts a fresh line. The torn
// record itself stays in the file and is skipped by readers (CRC fails).
func repairTail(path string, f *os.File) error {
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return err
	}
	r, err := os.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	var last [1]byte
	if _, err := r.ReadAt(last[:], st.Size()-1); err != nil {
		return err
	}
	if last[0] != '\n' {
		_, err = f.Write([]byte{'\n'})
	}
	return err
}

// Path returns the ledger file path.
func (l *Ledger) Path() string { return l.path }

// Rev returns the revision stamped into appended records.
func (l *Ledger) Rev() string { return l.rev }

// Host returns the fingerprint of the appending machine.
func (l *Ledger) Host() Host { return l.host }

// Append writes one record. The ledger fills Time, Rev, RunID and Host
// when unset; everything else is the caller's. The line is assembled
// fully before a single Write, so concurrent appenders never interleave
// partial records.
func (l *Ledger) Append(r Record) error {
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if r.Rev == "" {
		r.Rev = l.rev
	}
	if r.RunID == "" {
		r.RunID = l.run
	}
	if r.Host == (Host{}) {
		r.Host = l.host
	}
	body, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	line := make([]byte, 0, len(linePrefix)+9+len(body)+1)
	line = append(line, linePrefix...)
	line = append(line, fmt.Sprintf("%08x", crc32.Checksum(body, castagnoli))...)
	line = append(line, ' ')
	line = append(line, body...)
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.f.Write(line)
	return err
}

// Close flushes and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Read parses every valid record in a ledger file, in append order.
// Invalid lines are skipped, not fatal; their count comes back so callers
// can surface the damage. A torn tail from a crash always fails the CRC —
// the checksum covers the complete body, so any truncated prefix
// mismatches — and a missing file reads as an empty history.
func Read(path string) (recs []Record, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		r, ok := parseLine(sc.Bytes())
		if !ok {
			skipped++
			continue
		}
		recs = append(recs, r)
	}
	return recs, skipped, sc.Err()
}

// parseLine validates and decodes one ledger line.
func parseLine(line []byte) (Record, bool) {
	if !bytes.HasPrefix(line, []byte(linePrefix)) || len(line) < len(linePrefix)+9 {
		return Record{}, false
	}
	rest := line[len(linePrefix):]
	if rest[8] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &want); err != nil {
		return Record{}, false
	}
	body := rest[9:]
	if crc32.Checksum(body, castagnoli) != want {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(body, &r); err != nil {
		return Record{}, false
	}
	return r, true
}

// ReadDir reads the ledger history under a -ledger directory.
func ReadDir(dir string) ([]Record, int, error) {
	return Read(filepath.Join(dir, FileName))
}
