package ledger

import (
	"fmt"
	"io"
	"sort"
)

// This file is the cross-run comparison layer: given the full history, pit
// two revisions against each other per series point and gate on
// regressions — the simulated-metrics analog of the benchjson ns/op gate.
// "Latest record wins" within a revision, so re-running a rev supersedes
// its earlier numbers instead of mixing them.

// Delta is one (workload, series, input) point measured at two revisions.
type Delta struct {
	Workload string
	Series   string
	Input    string
	A, B     Record // latest timing record at each rev, in history order

	// IPCPct is the relative IPC change B vs A (negative = regression);
	// WallPct the relative wall-time change (positive = slower); CPUPct
	// the relative CPU-time change (positive = more expensive, 0 when
	// either side lacks CPU accounting).
	IPCPct  float64
	WallPct float64
	CPUPct  float64

	// CrossHost flags records from different machines: IPC is still
	// comparable (simulated cycles are deterministic), wall time is not.
	CrossHost bool

	// Mixed flags a fidelity mismatch: one side is a sampled estimate and
	// the other an exact run (or both are estimates under different
	// sampling specs). Such deltas measure the estimator, not the code —
	// the gate skips them and the table calls them out.
	Mixed bool
}

// Compare pairs the latest timing record of every series point at revA
// with its counterpart at revB, sorted by workload then series. Records
// without timing data (Cycles == 0) and points present at only one rev
// are left out.
func Compare(recs []Record, revA, revB string) []Delta {
	latest := func(rev string) map[string]Record {
		m := make(map[string]Record)
		for _, r := range recs {
			if r.Rev == rev && r.Cycles > 0 && r.Error == "" {
				m[r.PointKey()] = r // later records overwrite earlier: latest wins
			}
		}
		return m
	}
	as, bs := latest(revA), latest(revB)
	var out []Delta
	for k, a := range as {
		b, ok := bs[k]
		if !ok {
			continue
		}
		d := Delta{
			Workload:  a.Workload,
			Series:    a.Series,
			Input:     a.Input,
			A:         a,
			B:         b,
			CrossHost: !a.Host.SameMachine(b.Host),
			Mixed:     a.Estimate != b.Estimate || a.Sample != b.Sample,
		}
		if a.IPC > 0 {
			d.IPCPct = (b.IPC - a.IPC) / a.IPC
		}
		if a.WallMS > 0 {
			d.WallPct = (b.WallMS - a.WallMS) / a.WallMS
		}
		if a.CPUMS > 0 && b.CPUMS > 0 {
			d.CPUPct = (b.CPUMS - a.CPUMS) / a.CPUMS
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].Input < out[j].Input
	})
	return out
}

// realWall reports whether a record's wall time measured actual
// simulation work (not a cache hit answered in microseconds).
func realWall(r Record) bool {
	switch r.Cache {
	case "miss", "nocache", "traced", "run", "":
		return true
	}
	return false
}

// Gate returns the points that regressed beyond tolerance: an IPC drop
// worse than -ipcTol, a wall-time growth beyond wallTol when both records
// are uncached simulations on the same machine (cache hits and cross-host
// pairs carry no wall-time signal), or a CPU-time growth beyond cpuTol
// when both records carry CPU accounting. CPU time is robust to host load,
// and machines of the same class agree well enough that the CPU gate
// applies to cross-host pairs too — it is the preferred cost gate.
// Mixed-fidelity pairs (a sampled estimate against an exact run) are
// skipped entirely — their delta measures the estimator's error, not a
// code change. Tolerances are fractions (0.05 = 5%).
func Gate(deltas []Delta, ipcTol, wallTol, cpuTol float64) []string {
	var fails []string
	for _, d := range deltas {
		if d.Mixed {
			continue
		}
		point := fmt.Sprintf("%s/%s [%s]", d.Workload, d.Series, d.Input)
		if d.IPCPct < -ipcTol {
			fails = append(fails, fmt.Sprintf("%s: IPC %.4f -> %.4f (%+.1f%%)",
				point, d.A.IPC, d.B.IPC, 100*d.IPCPct))
		}
		if wallTol > 0 && !d.CrossHost && realWall(d.A) && realWall(d.B) && d.WallPct > wallTol {
			fails = append(fails, fmt.Sprintf("%s: wall %.0fms -> %.0fms (%+.1f%%)",
				point, d.A.WallMS, d.B.WallMS, 100*d.WallPct))
		}
		if cpuTol > 0 && realWall(d.A) && realWall(d.B) &&
			d.A.CPUMS > 0 && d.B.CPUMS > 0 && d.CPUPct > cpuTol {
			fails = append(fails, fmt.Sprintf("%s: cpu %.0fms -> %.0fms (%+.1f%%)",
				point, d.A.CPUMS, d.B.CPUMS, 100*d.CPUPct))
		}
	}
	return fails
}

// WriteCompareText renders the per-point delta table.
func WriteCompareText(w io.Writer, revA, revB string, deltas []Delta) error {
	if len(deltas) == 0 {
		_, err := fmt.Fprintf(w, "no common timing records for revs %s and %s\n", revA, revB)
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %-26s %-6s %8s %8s %7s %9s %9s %8s %8s\n",
		"workload", "series", "input", "ipc@"+trunc(revA, 4), "ipc@"+trunc(revB, 4),
		"Δipc%", "wall@A ms", "wall@B ms", "Δwall%", "Δcpu%"); err != nil {
		return err
	}
	cross, mixed := false, false
	for _, d := range deltas {
		note := ""
		if d.CrossHost {
			note, cross = note+"  [cross-host]", true
		}
		if d.Mixed {
			note, mixed = note+"  [mixed-fidelity]", true
		}
		cpu := fmt.Sprintf("%8s", "–") // either side predates CPU accounting
		if d.A.CPUMS > 0 && d.B.CPUMS > 0 {
			cpu = fmt.Sprintf("%+7.1f%%", 100*d.CPUPct)
		}
		if _, err := fmt.Fprintf(w, "%-18s %-26s %-6s %8.4f %8.4f %+6.1f%% %9.1f %9.1f %+7.1f%% %s%s\n",
			d.Workload, d.Series, d.Input, d.A.IPC, d.B.IPC, 100*d.IPCPct,
			d.A.WallMS, d.B.WallMS, 100*d.WallPct, cpu, note); err != nil {
			return err
		}
	}
	if cross {
		if _, err := fmt.Fprintln(w, "note: [cross-host] points were recorded on different machines — wall-time deltas measure the hardware, IPC deltas remain valid"); err != nil {
			return err
		}
	}
	if mixed {
		if _, err := fmt.Fprintln(w, "warning: [mixed-fidelity] points pair a sampled estimate with an exact run (or two different sampling specs) — their deltas measure the estimator, not the code, and the regression gate skips them"); err != nil {
			return err
		}
	}
	return nil
}

// trunc shortens a revision for column headers.
func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
