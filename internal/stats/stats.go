// Package stats assembles experiment results into the paper's presentation
// forms: S-curves (per-program values sorted worst to best, each series
// sorted independently), arithmetic and geometric means, and plain-text
// renderings of the figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one experiment line: a labelled set of per-program values
// (e.g. performance relative to the fully-provisioned baseline).
type Series struct {
	Label  string
	Values map[string]float64 // program -> value
}

// NewSeries creates an empty series.
func NewSeries(label string) *Series {
	return &Series{Label: label, Values: make(map[string]float64)}
}

// Add records a program's value.
func (s *Series) Add(program string, v float64) { s.Values[program] = v }

// SCurve returns the values sorted ascending (worst to best), the paper's
// S-curve ordering.
func (s *Series) SCurve() []float64 {
	out := make([]float64, 0, len(s.Values))
	for _, v := range s.Values {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// Mean returns the arithmetic mean.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// GeoMean returns the geometric mean of the positive values. Values <= 0
// have no geometric mean (log is undefined) and are skipped rather than
// poisoning the whole series with NaN; a series with no positive values
// returns 0. All experiment metrics (relative performance, coverage of a
// non-empty run) are positive, so in practice nothing is skipped and the
// result is the plain geometric mean.
func (s *Series) GeoMean() float64 {
	var sum float64
	n := 0
	for _, v := range s.Values {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the middle S-curve value.
func (s *Series) Median() float64 {
	c := s.SCurve()
	if len(c) == 0 {
		return 0
	}
	return c[len(c)/2]
}

// CountBelow returns how many programs fall below the threshold.
func (s *Series) CountBelow(th float64) int {
	n := 0
	for _, v := range s.Values {
		if v < th {
			n++
		}
	}
	return n
}

// Report is a collection of series over a common program population.
type Report struct {
	Title  string
	Series []*Series
}

// Get returns the series with the given label, or nil.
func (r *Report) Get(label string) *Series {
	for _, s := range r.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// Add appends a series.
func (r *Report) Add(s *Series) { r.Series = append(r.Series, s) }

// SummaryTable renders label, mean, geomean, median, min, max per series.
func (r *Report) SummaryTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	fmt.Fprintf(&sb, "%-28s %8s %8s %8s %8s %8s %6s\n",
		"series", "mean", "geomean", "median", "min", "max", "n")
	for _, s := range r.Series {
		c := s.SCurve()
		if len(c) == 0 {
			fmt.Fprintf(&sb, "%-28s %8s\n", s.Label, "(empty)")
			continue
		}
		fmt.Fprintf(&sb, "%-28s %8.3f %8.3f %8.3f %8.3f %8.3f %6d\n",
			s.Label, s.Mean(), s.GeoMean(), s.Median(), c[0], c[len(c)-1], len(c))
	}
	return sb.String()
}

// SCurvePlot renders the series as an ASCII S-curve chart: x = programs
// sorted worst to best (independently per series), y = value.
func (r *Report) SCurvePlot(width, height int, yMin, yMax float64) string {
	if len(r.Series) == 0 {
		return "(no series)\n"
	}
	marks := []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// y=1.0 reference line.
	if yMax > yMin {
		ref := int((1.0 - yMin) / (yMax - yMin) * float64(height-1))
		if ref >= 0 && ref < height {
			row := height - 1 - ref
			for x := 0; x < width; x++ {
				grid[row][x] = '-'
			}
		}
	}
	for si, s := range r.Series {
		curve := s.SCurve()
		if len(curve) == 0 {
			continue
		}
		m := marks[si%len(marks)]
		for x := 0; x < width; x++ {
			idx := x * (len(curve) - 1) / max(width-1, 1)
			v := curve[idx]
			if v < yMin {
				v = yMin
			}
			if v > yMax {
				v = yMax
			}
			y := int((v - yMin) / (yMax - yMin) * float64(height-1))
			grid[height-1-y][x] = m
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (y: %.2f..%.2f, '-' marks y=1.0)\n", r.Title, yMin, yMax)
	for i, row := range grid {
		yVal := yMax - float64(i)*(yMax-yMin)/float64(height-1)
		fmt.Fprintf(&sb, "%6.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "        programs sorted worst -> best (each series independently)\n")
	for si, s := range r.Series {
		fmt.Fprintf(&sb, "        %c = %s\n", marks[si%len(marks)], s.Label)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
