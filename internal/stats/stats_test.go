package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func series(vals ...float64) *Series {
	s := NewSeries("s")
	for i, v := range vals {
		s.Add(string(rune('a'+i)), v)
	}
	return s
}

func TestSCurveSorted(t *testing.T) {
	s := series(1.2, 0.8, 1.0)
	c := s.SCurve()
	if len(c) != 3 || c[0] != 0.8 || c[1] != 1.0 || c[2] != 1.2 {
		t.Errorf("SCurve = %v", c)
	}
}

func TestMeans(t *testing.T) {
	s := series(1.0, 4.0)
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean())
	}
	if math.Abs(s.GeoMean()-2.0) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", s.GeoMean())
	}
	if s.Median() != 4.0 { // len 2: index 1
		t.Errorf("Median = %v", s.Median())
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.GeoMean() != 0 || s.Median() != 0 {
		t.Error("empty series should report zeros")
	}
	if len(s.SCurve()) != 0 {
		t.Error("empty series SCurve should be empty")
	}
}

func TestGeoMeanSkipsNonPositive(t *testing.T) {
	// Values <= 0 have no log; they are skipped, not propagated as NaN.
	s := series(1.0, 4.0, 0, -3)
	got := s.GeoMean()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeoMean = %v, want finite", got)
	}
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2 (over the positive values only)", got)
	}
}

func TestGeoMeanAllNonPositive(t *testing.T) {
	if got := series(0, -1).GeoMean(); got != 0 {
		t.Errorf("GeoMean of non-positive series = %v, want 0", got)
	}
}

func TestGeoMeanUnchangedOnPositiveSeries(t *testing.T) {
	// The guard must not perturb the all-positive case (report output
	// stays byte-identical).
	s := series(0.5, 1.0, 2.0, 8.0)
	want := math.Exp((math.Log(0.5) + math.Log(1.0) + math.Log(2.0) + math.Log(8.0)) / 4)
	if got := s.GeoMean(); math.Abs(got-want) > 1e-15 {
		t.Errorf("GeoMean = %v, want %v", got, want)
	}
}

func TestCountBelow(t *testing.T) {
	s := series(0.8, 0.95, 1.0, 1.1)
	if got := s.CountBelow(1.0); got != 2 {
		t.Errorf("CountBelow(1.0) = %d, want 2", got)
	}
}

func TestReportGet(t *testing.T) {
	r := &Report{Title: "t"}
	r.Add(series(1))
	if r.Get("s") == nil || r.Get("missing") != nil {
		t.Error("Get broken")
	}
}

func TestSummaryTable(t *testing.T) {
	r := &Report{Title: "My Experiment"}
	r.Add(series(0.9, 1.1))
	r.Add(NewSeries("empty"))
	out := r.SummaryTable()
	for _, want := range []string{"My Experiment", "mean", "1.000", "(empty)"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSCurvePlot(t *testing.T) {
	r := &Report{Title: "plot"}
	r.Add(series(0.8, 0.9, 1.0, 1.1, 1.2))
	out := r.SCurvePlot(40, 10, 0.5, 1.5)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "o = s") {
		t.Errorf("plot malformed:\n%s", out)
	}
	// Must contain the y=1.0 reference line.
	if !strings.Contains(out, "---") {
		t.Errorf("missing reference line:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Error("plot too short")
	}
}

func TestSCurvePlotEmpty(t *testing.T) {
	r := &Report{Title: "none"}
	if out := r.SCurvePlot(10, 5, 0, 1); !strings.Contains(out, "no series") {
		t.Errorf("empty plot = %q", out)
	}
}

// Property: Mean lies within [min, max]; GeoMean <= Mean (AM-GM).
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("p")
		for i, v := range raw {
			s.Add(string(rune(i)), 0.1+float64(v%300)/100)
		}
		c := s.SCurve()
		m, g := s.Mean(), s.GeoMean()
		return m >= c[0]-1e-9 && m <= c[len(c)-1]+1e-9 && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
