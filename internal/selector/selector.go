// Package selector implements the paper's mini-graph selection policies:
//
//	Struct-All      — admit every candidate (serialization-blind, maximal
//	                  coverage; Section 3).
//	Struct-None     — reject every potentially-serializing candidate
//	                  (serialization-blind, conservative; Section 3).
//	Struct-Bounded  — admit candidates whose serialization delay is bounded
//	                  by inspection of dataflow structure (Section 4.2).
//	Slack-Profile   — use local slack profiles and the paper's four rules to
//	                  reject candidates whose estimated delay cannot be
//	                  absorbed (Section 4.3).
//	Slack-Dynamic   — admit everything statically and let the hardware
//	                  monitor disable harmful templates (Section 4.4).
//
// Plus the ablation variants of Sections 5.2 and 5.3: Slack-Profile-Delay,
// Slack-Profile-SIAL, Ideal-Slack-Dynamic, Ideal-Slack-Dynamic-Delay and
// Ideal-Slack-Dynamic-SIAL.
package selector

import (
	"math"

	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/prog"
	"repro/internal/slack"
)

// DynOptions configures the Slack-Dynamic hardware monitor for a policy
// (mirrored into pipeline.MGConfig by the orchestration layer).
type DynOptions struct {
	Dynamic        bool // enable the run-time monitor
	DelayOnly      bool // consider serialization delay only (no rule #4)
	SIAL           bool // serial-input-arrives-last heuristic detection
	IdealOutlining bool // disabled mini-graphs execute penalty-free
}

// Selector is one selection policy.
type Selector struct {
	name         string
	needsProfile bool
	filter       func(p *prog.Program, cands []*minigraph.Candidate, prof *slack.Profile) []*minigraph.Candidate

	// Dyn holds the hardware-monitor options this policy requires.
	Dyn DynOptions
}

// Name returns the policy's paper name.
func (s *Selector) Name() string { return s.name }

// NeedsProfile reports whether the policy requires a slack profile.
func (s *Selector) NeedsProfile() bool { return s.needsProfile }

// Pool filters the candidate pool according to the policy. prof may be nil
// for policies with NeedsProfile() == false.
func (s *Selector) Pool(p *prog.Program, cands []*minigraph.Candidate, prof *slack.Profile) []*minigraph.Candidate {
	return s.filter(p, cands, prof)
}

func keepAll(_ *prog.Program, cands []*minigraph.Candidate, _ *slack.Profile) []*minigraph.Candidate {
	return cands
}

func keepIf(pred func(*minigraph.Candidate) bool) func(*prog.Program, []*minigraph.Candidate, *slack.Profile) []*minigraph.Candidate {
	return func(_ *prog.Program, cands []*minigraph.Candidate, _ *slack.Profile) []*minigraph.Candidate {
		var out []*minigraph.Candidate
		for _, c := range cands {
			if pred(c) {
				out = append(out, c)
			}
		}
		return out
	}
}

// StructAll admits every candidate.
func StructAll() *Selector {
	return &Selector{name: "Struct-All", filter: keepAll}
}

// StructNone rejects every potentially-serializing candidate.
func StructNone() *Selector {
	return &Selector{
		name:   "Struct-None",
		filter: keepIf(func(c *minigraph.Candidate) bool { return !c.Serializing() }),
	}
}

// StructBounded rejects only candidates with statically unbounded
// serialization delay on their register output.
func StructBounded() *Selector {
	return &Selector{
		name:   "Struct-Bounded",
		filter: keepIf((*minigraph.Candidate).BoundedSerialization),
	}
}

// SlackProfile is the paper's full profile-driven selector (rules #1–#4).
func SlackProfile() *Selector {
	return &Selector{
		name:         "Slack-Profile",
		needsProfile: true,
		filter:       slackFilter(ModeFull),
	}
}

// SlackProfileDelay is the rule-#4-less ablation: reject any candidate
// whose output is delayed at all, absorbable or not.
func SlackProfileDelay() *Selector {
	return &Selector{
		name:         "Slack-Profile-Delay",
		needsProfile: true,
		filter:       slackFilter(ModeDelay),
	}
}

// SlackProfileSIAL is the operand-arrival-order heuristic (macro-op
// scheduling's filter) applied to the same profile data.
func SlackProfileSIAL() *Selector {
	return &Selector{
		name:         "Slack-Profile-SIAL",
		needsProfile: true,
		filter:       slackFilter(ModeSIAL),
	}
}

// SlackProfileMem is Slack-Profile with cache-aware execution latencies in
// rule #2 (the extension the paper's mcf footnote leaves as future work):
// load constituents are charged their profiled average latency, so
// candidates containing missing loads are modeled with their real delays.
func SlackProfileMem() *Selector {
	return &Selector{
		name:         "Slack-Profile-Mem",
		needsProfile: true,
		filter:       slackFilter(ModeMemLat),
	}
}

// SlackProfileGlobal budgets register outputs by *global* slack instead of
// local slack. Section 4.3 argues global slack is the worse signal for
// selecting many mini-graphs at once (the critical path it is relative to
// shifts as each mini-graph lands); this selector exists to test that.
func SlackProfileGlobal() *Selector {
	return &Selector{
		name:         "Slack-Profile-Global",
		needsProfile: true,
		filter:       slackFilter(ModeGlobal),
	}
}

// SlackDynamic admits everything statically; the hardware monitor disables
// harmful templates at run time (outlined execution penalty applies).
func SlackDynamic() *Selector {
	return &Selector{
		name:   "Slack-Dynamic",
		filter: keepAll,
		Dyn:    DynOptions{Dynamic: true},
	}
}

// IdealSlackDynamic removes the outlining penalty from Slack-Dynamic.
func IdealSlackDynamic() *Selector {
	return &Selector{
		name:   "Ideal-Slack-Dynamic",
		filter: keepAll,
		Dyn:    DynOptions{Dynamic: true, IdealOutlining: true},
	}
}

// IdealSlackDynamicDelay is penalty-free Slack-Dynamic considering only
// serialization delay (no consumer-impact check).
func IdealSlackDynamicDelay() *Selector {
	return &Selector{
		name:   "Ideal-Slack-Dynamic-Delay",
		filter: keepAll,
		Dyn:    DynOptions{Dynamic: true, IdealOutlining: true, DelayOnly: true},
	}
}

// IdealSlackDynamicSIAL is penalty-free Slack-Dynamic with the
// operand-arrival-order heuristic.
func IdealSlackDynamicSIAL() *Selector {
	return &Selector{
		name:   "Ideal-Slack-Dynamic-SIAL",
		filter: keepAll,
		Dyn:    DynOptions{Dynamic: true, IdealOutlining: true, SIAL: true},
	}
}

// SlackDynamicDelay is Slack-Dynamic (with outlining penalties) considering
// only serialization delay.
func SlackDynamicDelay() *Selector {
	return &Selector{
		name:   "Slack-Dynamic-Delay",
		filter: keepAll,
		Dyn:    DynOptions{Dynamic: true, DelayOnly: true},
	}
}

// Main returns the paper's five primary selectors in presentation order.
func Main() []*Selector {
	return []*Selector{StructAll(), StructNone(), StructBounded(), SlackProfile(), SlackDynamic()}
}

// --- Slack-Profile rule evaluation ---

// Mode selects which subset of the Slack-Profile model a filter applies.
type Mode int

// Slack-Profile model variants (Section 5.2), plus ModeMemLat — the
// paper's future-work extension that charges profiled (cache-aware)
// execution latencies in rule #2.
const (
	ModeFull   Mode = iota // rules #1–#4
	ModeDelay              // rules #1–#3; reject on any output delay
	ModeSIAL               // operand arrival order only
	ModeMemLat             // rules #1–#4 with profiled latencies
	ModeGlobal             // rule #4 budgets register outputs by global slack
)

// delayEps tolerates floating-point fuzz in averaged profile times: an
// output is "delayed" only if its computed delay exceeds its budget by more
// than half a cycle.
const delayEps = 0.5

func slackFilter(mode Mode) func(*prog.Program, []*minigraph.Candidate, *slack.Profile) []*minigraph.Candidate {
	return func(p *prog.Program, cands []*minigraph.Candidate, prof *slack.Profile) []*minigraph.Candidate {
		var out []*minigraph.Candidate
		for _, c := range cands {
			if !Degrades(p, c, prof, mode) {
				out = append(out, c)
			}
		}
		return out
	}
}

// Eval computes the paper's rules #1–#3 for a candidate against a profile:
// the mini-graph issue time of each constituent and the induced delay of
// each constituent relative to its profiled singleton issue time. All times
// are relative to the candidate's basic-block head issue time. Returns
// ok=false when the profile has no data for the candidate (it never
// executed), in which case the candidate is harmless.
func Eval(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile) (issueMG, delay []float64, ok bool) {
	return evalLat(p, c, prof, false)
}

// EvalProfiledLatencies is Eval with rule #2 charging each constituent its
// *profiled* average execution latency (which includes observed cache-miss
// time) instead of the optimistic static latency. This implements the
// remedy the paper's mcf footnote leaves for future work.
func EvalProfiledLatencies(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile) (issueMG, delay []float64, ok bool) {
	return evalLat(p, c, prof, true)
}

func evalLat(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile, profiledLat bool) (issueMG, delay []float64, ok bool) {
	if prof == nil || !prof.Valid(c.Start) {
		return nil, nil, false
	}
	// Rule #1: external serialization. The mini-graph issues when the
	// first instruction could issue and every external input is ready.
	issue0 := prof.Issue[c.Start]
	t := issue0
	for i, r := range c.ExternalIns {
		ready, found := inputReady(p, c, prof, i, r)
		if found && ready > t {
			t = ready
		}
	}
	issueMG = make([]float64, c.N)
	delay = make([]float64, c.N)
	for k := 0; k < c.N; k++ {
		// Rule #2: internal serialization — constituent k issues when its
		// predecessor's execution latency has elapsed.
		issueMG[k] = t
		lat := optimisticLat(p.Code[c.Start+k].Op)
		if profiledLat {
			if pl := prof.ExecLat[c.Start+k]; !math.IsNaN(pl) && pl > lat {
				lat = pl
			}
		}
		t += lat
		// Rule #3: instruction delay.
		singleton := prof.Issue[c.Start+k]
		if math.IsNaN(singleton) {
			singleton = issue0
		}
		delay[k] = issueMG[k] - singleton
	}
	return issueMG, delay, true
}

// inputReady returns the profiled ready time of external input i of the
// candidate (relative to the block head), located at its first consumer.
func inputReady(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile, i int, r isa.Reg) (float64, bool) {
	k := c.FirstUse[i]
	in := p.Code[c.Start+k]
	var v float64 = math.NaN()
	switch r {
	case in.Rs1:
		v = prof.SrcReady[c.Start+k][0]
	case in.Rs2:
		v = prof.SrcReady[c.Start+k][1]
	}
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// optimisticLat is the execution latency rule #2 charges per constituent.
// Loads are charged the L1-hit latency; cache misses are deliberately not
// modeled (the paper's footnote about mcf notes this limitation).
func optimisticLat(op isa.Op) float64 {
	switch {
	case isa.ClassOf(op) == isa.ClassLoad:
		return 4 // 1 agen + 3-cycle L1 hit
	default:
		return float64(isa.Latency(op))
	}
}

// Degrades applies the policy's rejection rule to one candidate.
func Degrades(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile, mode Mode) bool {
	if prof == nil || !prof.Valid(c.Start) {
		return false // never executed: harmless
	}
	if mode == ModeSIAL {
		return serialInputArrivesLast(p, c, prof)
	}
	var delay []float64
	var ok bool
	if mode == ModeMemLat {
		_, delay, ok = EvalProfiledLatencies(p, c, prof)
	} else {
		_, delay, ok = Eval(p, c, prof)
	}
	if !ok {
		return false
	}
	check := func(k int, budget float64) bool {
		if math.IsNaN(budget) {
			budget = slack.BigSlack
		}
		if mode == ModeDelay {
			budget = 0
		}
		return delay[k] > budget+delayEps
	}
	// Rule #4: a mini-graph degrades performance if any output's delay
	// exceeds that output's slack budget (local slack, or global slack for
	// the ModeGlobal ablation of Section 4.3's argument).
	if c.OutputIdx >= 0 {
		budget := prof.RegSlack[c.Start+c.OutputIdx]
		if mode == ModeGlobal {
			budget = prof.GlobalRegSlack[c.Start+c.OutputIdx]
		}
		if check(c.OutputIdx, budget) {
			return true
		}
	}
	if c.MemIdx >= 0 && p.Code[c.Start+c.MemIdx].IsStore() &&
		check(c.MemIdx, prof.StoreSlack[c.Start+c.MemIdx]) {
		return true
	}
	if c.CtrlIdx >= 0 && check(c.CtrlIdx, prof.BranchSlack[c.Start+c.CtrlIdx]) {
		return true
	}
	return false
}

// serialInputArrivesLast reports whether the candidate's last-arriving
// external input is a serializing one (the SIAL heuristic).
func serialInputArrivesLast(p *prog.Program, c *minigraph.Candidate, prof *slack.Profile) bool {
	if !c.Serializing() {
		return false
	}
	best := math.Inf(-1)
	bestSer := false
	for i, r := range c.ExternalIns {
		ready, found := inputReady(p, c, prof, i, r)
		if !found {
			ready = 0
		}
		if ready > best {
			best = ready
			bestSer = c.FirstUse[i] > 0
		}
	}
	return bestSer
}
