package selector

import (
	"math"
	"testing"
)

func TestProfiledLatencies(t *testing.T) {
	// A candidate containing a load whose profiled latency is huge (a
	// missing load): EvalProfiledLatencies must charge it, Eval must not.
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 0)
	// Pretend constituent D (index 3 in the program) is a 50-cycle op.
	prof.ExecLat[3] = 50

	_, optDelay, ok := Eval(p, c, prof)
	if !ok {
		t.Fatal("Eval failed")
	}
	_, memDelay, ok := EvalProfiledLatencies(p, c, prof)
	if !ok {
		t.Fatal("EvalProfiledLatencies failed")
	}
	// The constituent after D (E, index 2 in the candidate) must see the
	// extra latency only under the profiled model.
	if !(memDelay[2] > optDelay[2]+40) {
		t.Errorf("profiled latency not charged: optimistic %.1f vs profiled %.1f",
			optDelay[2], memDelay[2])
	}
	// And the verdicts must differ: generous slack absorbs the optimistic
	// delay but not the profiled one.
	prof49 := fig5Profile(p, 49)
	prof49.ExecLat[3] = 50
	if Degrades(p, c, prof49, ModeFull) {
		t.Error("optimistic model should accept with 49 cycles of slack")
	}
	if !Degrades(p, c, prof49, ModeMemLat) {
		t.Error("profiled model should reject: the 50-cycle load delay exceeds 49 slack")
	}
}

func TestGlobalSlackMode(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 0) // local slack 0 on E -> ModeFull rejects
	prof.GlobalRegSlack[4] = 10
	if !Degrades(p, c, prof, ModeFull) {
		t.Fatal("local mode should reject with zero local slack")
	}
	if Degrades(p, c, prof, ModeGlobal) {
		t.Error("global mode should accept: 10 cycles of global slack absorb the delay")
	}
	prof.GlobalRegSlack[4] = 0
	if !Degrades(p, c, prof, ModeGlobal) {
		t.Error("global mode should reject with zero global slack")
	}
}

func TestGlobalSlackNaNDefaultsBig(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 0)
	prof.GlobalRegSlack[4] = math.NaN()
	// NaN -> BigSlack: unobserved values are treated as uncritical.
	if Degrades(p, c, prof, ModeGlobal) {
		t.Error("unobserved global slack should default to BigSlack (accept)")
	}
}

func TestNewSelectorsRegistered(t *testing.T) {
	for _, s := range []*Selector{SlackProfileMem(), SlackProfileGlobal()} {
		if !s.NeedsProfile() {
			t.Errorf("%s must need a profile", s.Name())
		}
		if s.Dyn.Dynamic {
			t.Errorf("%s must be a static policy", s.Name())
		}
	}
	if SlackProfileMem().Name() != "Slack-Profile-Mem" {
		t.Error("name mismatch")
	}
	if SlackProfileGlobal().Name() != "Slack-Profile-Global" {
		t.Error("name mismatch")
	}
}
