package selector

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/prog"
	"repro/internal/slack"
)

// fig5Program reconstructs the paper's Figure 5 worked example. One basic
// block: A, C, B, D, E, F where the candidate mini-graph is BDE:
//
//	A: rA <- ...        (head; produces the input ready at cycle 2)
//	C: rC <- ...        (produces the serializing input ready at cycle 6)
//	B: rB <- rA + 1     (first constituent)
//	D: rD <- rB + rC    (serializing input rC consumed here)
//	E: rE <- rD + 1     (register output)
//	F: store rE         (external consumer)
const (
	rA, rC, rB, rD, rE isa.Reg = 1, 2, 3, 4, 5
)

func fig5Program(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("fig5")
	b.Addi(rA, 10, 1)    // 0: A
	b.Addi(rC, 11, 1)    // 1: C
	b.Addi(rB, rA, 1)    // 2: B
	b.Add(rD, rB, rC)    // 3: D
	b.Addi(rE, rD, 1)    // 4: E
	b.Stw(rE, isa.SP, 0) // 5: F
	b.Halt()
	return b.MustBuild()
}

// fig5Profile fabricates the singleton schedule in Figure 5: A's value
// ready at 2, C's at 6; B/D/E issue at 2/6/7 as singletons.
func fig5Profile(p *prog.Program, eSlack float64) *slack.Profile {
	n := p.NumInstrs()
	prof := &slack.Profile{
		Name:           "fig5",
		Count:          make([]int64, n),
		Issue:          make([]float64, n),
		Ready:          make([]float64, n),
		SrcReady:       make([][2]float64, n),
		ExecLat:        make([]float64, n),
		RegSlack:       make([]float64, n),
		StoreSlack:     make([]float64, n),
		BranchSlack:    make([]float64, n),
		GlobalRegSlack: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		prof.Count[i] = 100
		prof.SrcReady[i] = [2]float64{math.NaN(), math.NaN()}
		prof.RegSlack[i] = math.NaN()
		prof.StoreSlack[i] = math.NaN()
		prof.BranchSlack[i] = math.NaN()
		prof.GlobalRegSlack[i] = math.NaN()
		prof.ExecLat[i] = 1
	}
	prof.Issue[0], prof.Ready[0] = 0, 2 // A
	prof.Issue[1], prof.Ready[1] = 3, 6 // C
	prof.Issue[2], prof.Ready[2] = 2, 3 // B (rA ready 2)
	prof.SrcReady[2][0] = 2             // B reads rA
	prof.Issue[3], prof.Ready[3] = 6, 7 // D waits for rC
	prof.SrcReady[3][0] = 3             // rB
	prof.SrcReady[3][1] = 6             // rC — the serializing input
	prof.Issue[4], prof.Ready[4] = 7, 8 // E
	prof.SrcReady[4][0] = 7
	prof.RegSlack[4] = eSlack
	prof.Issue[5] = 8 // F
	prof.SrcReady[5][1] = 8
	return prof
}

func bde(t *testing.T, p *prog.Program) *minigraph.Candidate {
	t.Helper()
	for _, c := range minigraph.Enumerate(p, minigraph.DefaultLimits()) {
		if c.Start == 2 && c.N == 3 {
			return c
		}
	}
	t.Fatal("BDE candidate not found")
	return nil
}

func TestFig5RuleCalculation(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 0)

	issueMG, delay, ok := Eval(p, c, prof)
	if !ok {
		t.Fatal("Eval found no profile data")
	}
	// Rule #1: Issue_MG(B) = max(Ready(rA)=2, Ready(rC)=6, Issue(B)=2) = 6.
	if issueMG[0] != 6 {
		t.Errorf("Issue_MG(B) = %v, want 6", issueMG[0])
	}
	// Rule #2: D at 7, E at 8.
	if issueMG[1] != 7 || issueMG[2] != 8 {
		t.Errorf("Issue_MG(D,E) = %v,%v, want 7,8", issueMG[1], issueMG[2])
	}
	// Rule #3: Delay(E) = 8 - 7 = 1.
	if delay[2] != 1 {
		t.Errorf("Delay(E) = %v, want 1", delay[2])
	}
}

func TestFig5Rejection(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	// E has zero local slack: delay 1 propagates to F -> reject.
	if !Degrades(p, c, fig5Profile(p, 0), ModeFull) {
		t.Error("BDE with slack(E)=0 must degrade")
	}
	// With 3 cycles of slack on E, the delay is absorbed -> accept.
	if Degrades(p, c, fig5Profile(p, 3), ModeFull) {
		t.Error("BDE with slack(E)=3 must be absorbed")
	}
}

func TestDelayModeIgnoresSlack(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	// Even with plenty of slack, ModeDelay rejects any delayed output.
	if !Degrades(p, c, fig5Profile(p, 10), ModeDelay) {
		t.Error("Slack-Profile-Delay must reject a delayed output regardless of slack")
	}
}

func TestSIALMode(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 10)
	// rC (serializing) arrives at 6, after rA at 2: serial input last.
	if !Degrades(p, c, prof, ModeSIAL) {
		t.Error("SIAL must reject when the serializing input arrives last")
	}
	// Flip arrival order: rC early, rA late.
	prof.SrcReady[2][0] = 9
	prof.SrcReady[3][1] = 1
	if Degrades(p, c, prof, ModeSIAL) {
		t.Error("SIAL must accept when the serializing input arrives first")
	}
}

func TestUnprofiledCandidateHarmless(t *testing.T) {
	p := fig5Program(t)
	c := bde(t, p)
	prof := fig5Profile(p, 0)
	for i := range prof.Count {
		prof.Count[i] = 0
	}
	if Degrades(p, c, prof, ModeFull) {
		t.Error("never-executed candidate must be accepted (it cannot hurt)")
	}
}

func TestSelectorNamesAndProfiles(t *testing.T) {
	cases := []struct {
		s       *Selector
		name    string
		profile bool
		dynamic bool
	}{
		{StructAll(), "Struct-All", false, false},
		{StructNone(), "Struct-None", false, false},
		{StructBounded(), "Struct-Bounded", false, false},
		{SlackProfile(), "Slack-Profile", true, false},
		{SlackProfileDelay(), "Slack-Profile-Delay", true, false},
		{SlackProfileSIAL(), "Slack-Profile-SIAL", true, false},
		{SlackDynamic(), "Slack-Dynamic", false, true},
		{IdealSlackDynamic(), "Ideal-Slack-Dynamic", false, true},
		{IdealSlackDynamicDelay(), "Ideal-Slack-Dynamic-Delay", false, true},
		{IdealSlackDynamicSIAL(), "Ideal-Slack-Dynamic-SIAL", false, true},
		{SlackDynamicDelay(), "Slack-Dynamic-Delay", false, true},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Errorf("name = %q, want %q", c.s.Name(), c.name)
		}
		if c.s.NeedsProfile() != c.profile {
			t.Errorf("%s NeedsProfile = %v", c.name, c.s.NeedsProfile())
		}
		if c.s.Dyn.Dynamic != c.dynamic {
			t.Errorf("%s Dynamic = %v", c.name, c.s.Dyn.Dynamic)
		}
	}
	if len(Main()) != 5 {
		t.Errorf("Main() returns %d selectors, want 5", len(Main()))
	}
}

func TestPoolOrdering(t *testing.T) {
	p := fig5Program(t)
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	all := StructAll().Pool(p, cands, nil)
	none := StructNone().Pool(p, cands, nil)
	bounded := StructBounded().Pool(p, cands, nil)
	if len(all) != len(cands) {
		t.Error("Struct-All must keep everything")
	}
	// Struct-None ⊆ Struct-Bounded ⊆ Struct-All.
	if !(len(none) <= len(bounded) && len(bounded) <= len(all)) {
		t.Errorf("pool sizes none=%d bounded=%d all=%d violate subset ordering",
			len(none), len(bounded), len(all))
	}
	for _, c := range none {
		if c.Serializing() {
			t.Errorf("Struct-None admitted serializing candidate %v", c)
		}
	}
	for _, c := range bounded {
		if !c.BoundedSerialization() {
			t.Errorf("Struct-Bounded admitted unbounded candidate %v", c)
		}
	}
}

func TestSlackProfilePoolBetweenExtremes(t *testing.T) {
	p := fig5Program(t)
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	prof := fig5Profile(p, 0)
	sp := SlackProfile().Pool(p, cands, prof)
	spd := SlackProfileDelay().Pool(p, cands, prof)
	// Slack-Profile-Delay generates a strictly smaller (or equal) pool.
	if len(spd) > len(sp) {
		t.Errorf("Delay pool (%d) should be <= full pool (%d)", len(spd), len(sp))
	}
}
