package workload

import (
	"repro/internal/prog"
)

// sampleBytes produces deterministic pseudo-random payload bytes.
func sampleBytes(n int, seed uint64) []byte {
	r := rng{s: seed}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

func commSize(scale int) int { return 512 << scale } // 512 or 1024 bytes

// crc32Ref is the reference bitwise CRC-32 (poly 0xEDB88320).
func crc32Ref(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

func buildCRC32(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	data := sampleBytes(n, 0xC2C32)
	b := prog.NewBuilder("comm.crc32")
	buf := b.Bytes(data)
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0xFFFFFFFF)
	b.Label("byte")
	b.Ldb(4, 1, 0)
	b.Xor(3, 3, 4)
	b.Li(5, 8)
	b.Label("bit")
	b.Andi(6, 3, 1)
	b.Srli(3, 3, 1)
	b.Beqz(6, "skip")
	b.Xori(3, 3, 0xEDB88320)
	b.Label("skip")
	b.Subi(5, 5, 1)
	b.Bnez(5, "bit")
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "byte")
	b.Xori(0, 3, 0xFFFFFFFF)
	b.Halt()
	return b.MustBuild(), crc32Ref(data), true
}

// adler32Ref is the reference Adler-32.
func adler32Ref(data []byte) uint32 {
	const mod = 65521
	a, s := uint32(1), uint32(0)
	for _, c := range data {
		a = (a + uint32(c)) % mod
		s = (s + a) % mod
	}
	return s<<16 | a
}

func buildAdler32(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	data := sampleBytes(n, 0xAD1E4)
	b := prog.NewBuilder("comm.adler32")
	buf := b.Bytes(data)
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 1) // a
	b.Li(4, 0) // s
	b.Li(5, 65521)
	b.Label("loop")
	b.Ldb(6, 1, 0)
	b.Add(3, 3, 6)
	b.Rem(3, 3, 5)
	b.Add(4, 4, 3)
	b.Rem(4, 4, 5)
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Slli(0, 4, 16)
	b.Or(0, 0, 3)
	b.Halt()
	return b.MustBuild(), adler32Ref(data), true
}

// ipchkRef is the reference 16-bit ones-complement Internet checksum.
func ipchkRef(data []byte) uint32 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^sum & 0xffff
}

func buildIPChk(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	data := sampleBytes(n, 0x1BC4C)
	b := prog.NewBuilder("comm.ipchk")
	buf := b.Bytes(data)
	b.Li(1, buf)
	b.Li(2, int64(n/2))
	b.Li(3, 0)
	b.Label("loop")
	b.Ldb(4, 1, 0)
	b.Ldb(5, 1, 1)
	b.Slli(4, 4, 8)
	b.Or(4, 4, 5)
	b.Add(3, 3, 4)
	b.Addi(1, 1, 2)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	// Fold carries.
	b.Label("fold")
	b.Srli(4, 3, 16)
	b.Beqz(4, "done")
	b.Andi(3, 3, 0xffff)
	b.Add(3, 3, 4)
	b.Br("fold")
	b.Label("done")
	b.Xori(0, 3, 0xffff)
	b.Andi(0, 0, 0xffff)
	b.Halt()
	return b.MustBuild(), ipchkRef(data), true
}

// runBytes produces byte data with runs, for RLE.
func runBytes(n int, seed uint64) []byte {
	r := rng{s: seed}
	out := make([]byte, 0, n)
	for len(out) < n {
		v := byte(r.next() % 7)
		runLen := 1 + r.intn(9)
		for k := 0; k < runLen && len(out) < n; k++ {
			out = append(out, v)
		}
	}
	return out
}

// rleRef encodes runs and checksums the (value, count) stream.
func rleRef(data []byte) uint32 {
	var sum uint32
	i := 0
	for i < len(data) {
		j := i
		for j < len(data) && data[j] == data[i] {
			j++
		}
		sum = sum*31 + uint32(data[i])
		sum = sum*31 + uint32(j-i)
		i = j
	}
	return sum
}

func buildRLE(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	data := runBytes(n, 0x41E11)
	b := prog.NewBuilder("comm.rle")
	buf := b.Bytes(data)
	b.Li(1, buf)          // i ptr
	b.Li(2, buf+int64(n)) // end
	b.Li(3, 0)            // sum
	b.Label("outer")
	b.CmpUlt(4, 1, 2)
	b.Beqz(4, "done")
	b.Ldb(5, 1, 0) // run value
	b.Mov(6, 1)    // j = i
	b.Label("run")
	b.Addi(6, 6, 1)
	b.CmpUlt(4, 6, 2)
	b.Beqz(4, "endrun")
	b.Ldb(7, 6, 0)
	b.CmpEq(4, 7, 5)
	b.Bnez(4, "run")
	b.Label("endrun")
	// sum = sum*31 + value ; sum = sum*31 + runlen
	b.Li(8, 31)
	b.Mul(3, 3, 8)
	b.Add(3, 3, 5)
	b.Mul(3, 3, 8)
	b.Sub(9, 6, 1)
	b.Add(3, 3, 9)
	b.Mov(1, 6)
	b.Br("outer")
	b.Label("done")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), rleRef(data), true
}

// mixRef is a SHA-like add/rotate/xor mixer over 5 words per block.
func mixRef(data []byte, rounds int) uint32 {
	rotl := func(x uint32, s uint) uint32 { return x<<s | x>>(32-s) }
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	for i := 0; i+4 <= len(data); i += 4 {
		w := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		for r := 0; r < rounds; r++ {
			t := rotl(h[0], 5) + (h[1] ^ h[2] ^ h[3]) + h[4] + w + 0x5A827999
			h[4], h[3], h[2], h[1], h[0] = h[3], h[2], rotl(h[1], 30), h[0], t
		}
	}
	return h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]
}

func buildMix(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	const rounds = 4
	data := sampleBytes(n, 0x3A512)
	b := prog.NewBuilder("comm.mix")
	buf := b.Bytes(data)
	b.Li(1, buf)
	b.Li(2, int64(n/4))
	b.Li(3, 0x67452301)
	b.Li(4, 0xEFCDAB89)
	b.Li(5, 0x98BADCFE)
	b.Li(6, 0x10325476)
	b.Li(7, 0xC3D2E1F0)
	b.Label("block")
	b.Ldw(8, 1, 0) // w
	b.Li(9, rounds)
	b.Label("round")
	// t = rotl(h0,5) + (h1^h2^h3) + h4 + w + K
	b.Slli(10, 3, 5)
	b.Srli(11, 3, 27)
	b.Or(10, 10, 11) // rotl(h0,5)
	b.Xor(12, 4, 5)
	b.Xor(12, 12, 6)
	b.Add(10, 10, 12)
	b.Add(10, 10, 7)
	b.Add(10, 10, 8)
	b.Li(13, 0x5A827999)
	b.Add(10, 10, 13) // t
	// rotate state: h4=h3 h3=h2 h2=rotl(h1,30) h1=h0 h0=t
	b.Mov(7, 6)
	b.Mov(6, 5)
	b.Slli(14, 4, 30)
	b.Srli(15, 4, 2)
	b.Or(5, 14, 15)
	b.Mov(4, 3)
	b.Mov(3, 10)
	b.Subi(9, 9, 1)
	b.Bnez(9, "round")
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "block")
	b.Xor(0, 3, 4)
	b.Xor(0, 0, 5)
	b.Xor(0, 0, 6)
	b.Xor(0, 0, 7)
	b.Halt()
	return b.MustBuild(), mixRef(data, rounds), true
}

func init() {
	register(&Workload{Name: "comm.crc32", Suite: "comm", build: buildCRC32})
	register(&Workload{Name: "comm.adler32", Suite: "comm", build: buildAdler32})
	register(&Workload{Name: "comm.ipchk", Suite: "comm", build: buildIPChk})
	register(&Workload{Name: "comm.rle", Suite: "comm", build: buildRLE})
	register(&Workload{Name: "comm.mix", Suite: "comm", build: buildMix})
}
