package workload

import (
	"sort"

	"repro/internal/prog"
)

func intxSize(scale int) int { return 128 << scale } // elements

// qsortRef sorts and checksums sum(arr[i] * (i+1)).
func qsortRef(vals []uint32) uint32 {
	s := append([]uint32(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum uint32
	for i, v := range s {
		sum += v * uint32(i+1)
	}
	return sum
}

// buildQsort implements iterative quicksort with an explicit stack of
// (lo, hi) index pairs in memory. Unsigned comparisons; Lomuto partition.
func buildQsort(scale int) (*prog.Program, uint32, bool) {
	n := intxSize(scale)
	r := rng{s: 0x9507}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.next()) % 100000
	}
	want := qsortRef(vals)

	b := prog.NewBuilder("intx.qsort")
	arr := b.Words(vals...)
	stk := b.Space(int(8 * (int64(n) + 8))) // worst-case one pair per element

	// r1 = arr, r2 = stack ptr (grows up), r3 = lo, r4 = hi
	b.Li(1, arr)
	b.Li(2, stk)
	// push (0, n-1)
	b.Li(3, 0)
	b.Li(4, int64(n-1))
	b.Stw(3, 2, 0)
	b.Stw(4, 2, 4)
	b.Addi(2, 2, 8)

	b.Label("pop")
	b.Li(9, stk)
	b.CmpUlt(10, 9, 2) // stack nonempty?
	b.Beqz(10, "sorted")
	b.Subi(2, 2, 8)
	b.Ldw(3, 2, 0) // lo
	b.Ldw(4, 2, 4) // hi
	b.CmpLt(10, 3, 4)
	b.Beqz(10, "pop")

	// partition: pivot = arr[hi]; i = lo-1; j = lo..hi-1
	b.Slli(10, 4, 2)
	b.Add(10, 10, 1)
	b.Ldw(5, 10, 0) // pivot
	b.Subi(6, 3, 1) // i
	b.Mov(7, 3)     // j
	b.Label("part")
	b.CmpLt(10, 7, 4)
	b.Beqz(10, "endpart")
	b.Slli(10, 7, 2)
	b.Add(10, 10, 1)
	b.Ldw(11, 10, 0)    // arr[j]
	b.CmpUlt(12, 5, 11) // pivot < arr[j]?
	b.Bnez(12, "next")
	// i++; swap arr[i], arr[j]
	b.Addi(6, 6, 1)
	b.Slli(12, 6, 2)
	b.Add(12, 12, 1)
	b.Ldw(13, 12, 0)
	b.Stw(11, 12, 0)
	b.Stw(13, 10, 0)
	b.Label("next")
	b.Addi(7, 7, 1)
	b.Br("part")
	b.Label("endpart")
	// swap arr[i+1], arr[hi]; p = i+1
	b.Addi(6, 6, 1)
	b.Slli(10, 6, 2)
	b.Add(10, 10, 1)
	b.Slli(12, 4, 2)
	b.Add(12, 12, 1)
	b.Ldw(13, 10, 0)
	b.Ldw(14, 12, 0)
	b.Stw(14, 10, 0)
	b.Stw(13, 12, 0)
	// push (lo, p-1), (p+1, hi)
	b.Subi(13, 6, 1)
	b.Stw(3, 2, 0)
	b.Stw(13, 2, 4)
	b.Addi(2, 2, 8)
	b.Addi(13, 6, 1)
	b.Stw(13, 2, 0)
	b.Stw(4, 2, 4)
	b.Addi(2, 2, 8)
	b.Br("pop")

	b.Label("sorted")
	// checksum = sum arr[i]*(i+1)
	b.Li(1, arr)
	b.Li(2, int64(n))
	b.Li(3, 1) // i+1
	b.Li(4, 0)
	b.Label("ck")
	b.Ldw(5, 1, 0)
	b.Mul(5, 5, 3)
	b.Add(4, 4, 5)
	b.Addi(1, 1, 4)
	b.Addi(3, 3, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "ck")
	b.Mov(0, 4)
	b.Halt()
	return b.MustBuild(), want, true
}

// hashRef mirrors the open-addressing hash table kernel.
func hashRef(keys []uint32, logSize int) uint32 {
	size := 1 << logSize
	table := make([]uint32, size)
	mask := uint32(size - 1)
	insert := func(k uint32) {
		h := k * 2654435761 >> (32 - logSize) & mask
		for table[h] != 0 {
			h = (h + 1) & mask
		}
		table[h] = k
	}
	probe := func(k uint32) uint32 {
		h := k * 2654435761 >> (32 - logSize) & mask
		steps := uint32(0)
		for table[h] != 0 {
			if table[h] == k {
				return steps + 1
			}
			h = (h + 1) & mask
			steps++
		}
		return 0
	}
	for _, k := range keys {
		insert(k)
	}
	var sum uint32
	for _, k := range keys {
		sum += probe(k)
	}
	return sum
}

func buildHashProbe(scale int) (*prog.Program, uint32, bool) {
	n := intxSize(scale)
	logSize := 8 + scale // load factor 1/2
	r := rng{s: 0x8A54}
	keys := make([]uint32, n)
	seen := map[uint32]bool{}
	for i := range keys {
		for {
			k := uint32(r.next()) | 1
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	want := hashRef(keys, logSize)

	b := prog.NewBuilder("intx.hashprobe")
	keyArr := b.Words(keys...)
	table := b.Space(4 << logSize)
	mask4 := int64((1<<logSize)-1) << 2

	// Insert phase. r1 key ptr, r2 count, r3 table, r4 hash const
	b.Li(1, keyArr)
	b.Li(2, int64(n))
	b.Li(3, table)
	b.Li(4, 2654435761)
	b.Label("ins")
	b.Ldw(5, 1, 0) // key
	b.Mul(6, 5, 4)
	b.Srli(6, 6, int64(32-logSize))
	b.Slli(6, 6, 2)
	b.Andi(6, 6, mask4)
	b.Label("insp")
	b.Add(7, 6, 3)
	b.Ldw(8, 7, 0)
	b.Beqz(8, "insdone")
	b.Addi(6, 6, 4)
	b.Andi(6, 6, mask4)
	b.Br("insp")
	b.Label("insdone")
	b.Stw(5, 7, 0)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "ins")

	// Probe phase. r9 = sum.
	b.Li(1, keyArr)
	b.Li(2, int64(n))
	b.Li(9, 0)
	b.Label("pr")
	b.Ldw(5, 1, 0)
	b.Mul(6, 5, 4)
	b.Srli(6, 6, int64(32-logSize))
	b.Slli(6, 6, 2)
	b.Andi(6, 6, mask4)
	b.Li(10, 0) // steps
	b.Label("prp")
	b.Add(7, 6, 3)
	b.Ldw(8, 7, 0)
	b.Beqz(8, "prmiss")
	b.CmpEq(11, 8, 5)
	b.Bnez(11, "prhit")
	b.Addi(6, 6, 4)
	b.Andi(6, 6, mask4)
	b.Addi(10, 10, 1)
	b.Br("prp")
	b.Label("prhit")
	b.Addi(10, 10, 1)
	b.Add(9, 9, 10)
	b.Br("prnext")
	b.Label("prmiss")
	b.Label("prnext")
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "pr")
	b.Mov(0, 9)
	b.Halt()
	return b.MustBuild(), want, true
}

// chaseRef mirrors the pointer-chase kernel: follow a permutation cycle.
func chaseRef(next []uint32, steps int) uint32 {
	var sum uint32
	cur := uint32(0)
	for i := 0; i < steps; i++ {
		cur = next[cur]
		sum += cur
	}
	return sum
}

func buildListChase(scale int) (*prog.Program, uint32, bool) {
	n := intxSize(scale) * 64 // 32KB+ working set: escapes the L1
	steps := 4096 << scale
	r := rng{s: 0x11575}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]uint32, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = uint32(perm[(i+1)%n])
	}
	want := chaseRef(next, steps)

	b := prog.NewBuilder("intx.listchase")
	arr := b.Words(next...)
	b.Li(1, arr)
	b.Li(2, int64(steps))
	b.Li(3, 0) // cur
	b.Li(4, 0) // sum
	b.Label("loop")
	b.Slli(5, 3, 2)
	b.Add(5, 5, 1)
	b.Ldw(3, 5, 0)
	b.Add(4, 4, 3)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Mov(0, 4)
	b.Halt()
	return b.MustBuild(), want, true
}

// lcgBranchRef mirrors the branchy decision kernel.
func lcgBranchRef(iters int) uint32 {
	var s, a, c, d uint32 = 12345, 0, 0, 0
	for i := 0; i < iters; i++ {
		s = s*1103515245 + 12345
		x := s >> 16 & 0xff
		if x&1 != 0 {
			a += x
		} else if x&2 != 0 {
			c ^= x << 2
		} else if x < 64 {
			d += 3
		} else {
			a ^= c
		}
	}
	return a ^ c ^ d
}

func buildLCGBranch(scale int) (*prog.Program, uint32, bool) {
	iters := 2048 << scale
	want := lcgBranchRef(iters)
	b := prog.NewBuilder("intx.lcgbranch")
	// r1 iters, r2 s, r3 a, r4 c, r5 d
	b.Li(1, int64(iters))
	b.Li(2, 12345)
	b.Li(3, 0)
	b.Li(4, 0)
	b.Li(5, 0)
	b.Label("loop")
	b.Li(6, 1103515245)
	b.Mul(2, 2, 6)
	b.Addi(2, 2, 12345)
	b.Srli(6, 2, 16)
	b.Andi(6, 6, 0xff) // x
	b.Andi(7, 6, 1)
	b.Beqz(7, "e1")
	b.Add(3, 3, 6)
	b.Br("next")
	b.Label("e1")
	b.Andi(7, 6, 2)
	b.Beqz(7, "e2")
	b.Slli(7, 6, 2)
	b.Xor(4, 4, 7)
	b.Br("next")
	b.Label("e2")
	b.CmpLti(7, 6, 64)
	b.Beqz(7, "e3")
	b.Addi(5, 5, 3)
	b.Br("next")
	b.Label("e3")
	b.Xor(3, 3, 4)
	b.Label("next")
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Xor(0, 3, 4)
	b.Xor(0, 0, 5)
	b.Halt()
	return b.MustBuild(), want, true
}

// bsearchRef mirrors the binary-search kernel.
func bsearchRef(sorted []uint32, queries []uint32) uint32 {
	var sum uint32
	for _, q := range queries {
		lo, hi := 0, len(sorted)-1
		pos := uint32(0xffff)
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case sorted[mid] == q:
				pos = uint32(mid)
				lo = hi + 1
			case sorted[mid] < q:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
		sum += pos
	}
	return sum
}

func buildBsearch(scale int) (*prog.Program, uint32, bool) {
	n := intxSize(scale) * 4
	q := 512 << scale
	r := rng{s: 0xB5EA2}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.next()) % 1000000
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	queries := make([]uint32, q)
	for i := range queries {
		if r.chance(0.5) {
			queries[i] = vals[r.intn(n)] // hit
		} else {
			queries[i] = uint32(r.next()) % 1000000 // probable miss
		}
	}
	want := bsearchRef(vals, queries)

	b := prog.NewBuilder("intx.bsearch")
	arr := b.Words(vals...)
	qs := b.Words(queries...)
	// r1 qptr, r2 qcount, r3 sum
	b.Li(1, qs)
	b.Li(2, int64(q))
	b.Li(3, 0)
	b.Label("query")
	b.Ldw(4, 1, 0)      // q
	b.Li(5, 0)          // lo
	b.Li(6, int64(n-1)) // hi
	b.Li(7, 0xffff)     // pos
	b.Label("bs")
	b.CmpLe(8, 5, 6)
	b.Beqz(8, "endbs")
	b.Add(9, 5, 6)
	b.Srli(9, 9, 1) // mid
	b.Slli(10, 9, 2)
	b.Li(11, arr)
	b.Add(10, 10, 11)
	b.Ldw(10, 10, 0) // sorted[mid]
	b.CmpEq(11, 10, 4)
	b.Beqz(11, "ne")
	b.Mov(7, 9)
	b.Br("endbs")
	b.Label("ne")
	b.CmpUlt(11, 10, 4)
	b.Beqz(11, "upper")
	b.Addi(5, 9, 1)
	b.Br("bs")
	b.Label("upper")
	b.Subi(6, 9, 1)
	b.Br("bs")
	b.Label("endbs")
	b.Add(3, 3, 7)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "query")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

func init() {
	register(&Workload{Name: "intx.qsort", Suite: "intx", build: buildQsort})
	register(&Workload{Name: "intx.hashprobe", Suite: "intx", build: buildHashProbe})
	register(&Workload{Name: "intx.listchase", Suite: "intx", build: buildListChase})
	register(&Workload{Name: "intx.lcgbranch", Suite: "intx", build: buildLCGBranch})
	register(&Workload{Name: "intx.bsearch", Suite: "intx", build: buildBsearch})
}
