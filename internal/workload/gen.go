package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// rng is a small deterministic generator (splitmix-style) so workload
// construction is reproducible without math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) chance(p float64) bool { return float64(r.next()%1000)/1000 < p }

// traits parameterizes the program generator along the behavioural axes the
// suites differ on.
type traits struct {
	loops    int     // number of distinct loops
	bodyOps  int     // ALU ops per loop body
	ilp      int     // number of independent dataflow chains in the body
	memLoads int     // loads per body
	stores   float64 // probability of a store per body
	branchy  float64 // probability of a data-dependent skip per body
	chase    bool    // pointer-chasing load pattern (linked list)
	calls    bool    // wrap the body in a function call
	arrayLog int     // log2 words of the working set (scaled up by input)
	mulFrac  float64 // fraction of complex ops
}

// scratch registers available to generated code. r16–r19 are loop-control
// and pointer registers; r0 is the global accumulator.
var genRegs = []isa.Reg{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

const (
	ctrReg  = isa.Reg(16) // loop counter
	ptrReg  = isa.Reg(17) // array pointer
	idxReg  = isa.Reg(18) // index scratch
	baseReg = isa.Reg(19) // array base
)

// genProgram emits one generated workload program.
func genProgram(name string, seed uint64, tr traits, scale int) *prog.Program {
	r := &rng{s: seed}
	b := prog.NewBuilder(name)

	// Working set, scaled by input size.
	logWords := tr.arrayLog + scale
	words := 1 << logWords
	vals := make([]uint32, words)
	dr := &rng{s: seed ^ 0xabcdef}
	for i := range vals {
		vals[i] = uint32(dr.next())
	}
	// Pointer-chase workloads store "next" indices instead of raw data: a
	// permutation cycle covering the array.
	if tr.chase {
		perm := make([]int, words)
		for i := range perm {
			perm[i] = i
		}
		for i := words - 1; i > 0; i-- {
			j := dr.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		// Build one cycle: next[perm[i]] = perm[i+1].
		for i := 0; i < words; i++ {
			vals[perm[i]] = uint32(perm[(i+1)%words])
		}
	}
	arr := b.Words(vals...)

	trip := int64(words)
	if trip > 512 {
		trip = 512
	}
	trip += int64(16 * scale * tr.loops)

	for l := 0; l < tr.loops; l++ {
		loop := fmt.Sprintf("L%d", l)
		done := fmt.Sprintf("D%d", l)
		fn := fmt.Sprintf("F%d", l)

		b.Li(baseReg, arr)
		b.Li(ctrReg, trip)
		b.Li(ptrReg, arr)
		// Seed the dataflow chains.
		for i := 0; i < tr.ilp && i < len(genRegs); i++ {
			b.Li(genRegs[i], int64(r.intn(1<<16)+1))
		}
		b.Label(loop)
		if tr.calls {
			b.Jsr(fn)
		} else {
			genBody(b, r, tr, l, logWords)
		}
		b.Subi(ctrReg, ctrReg, 1)
		b.Bnez(ctrReg, loop)
		if tr.calls {
			b.Br(done)
			b.Label(fn)
			genBody(b, r, tr, l, logWords)
			b.Ret()
			b.Label(done)
		} else {
			b.Label(done)
		}
		// Fold the dataflow chains into the result after the loop (keeping
		// accumulation out of the hot body avoids imposing a universal
		// one-cycle loop recurrence on every program).
		for i := 0; i < tr.ilp && i < len(genRegs); i++ {
			b.Add(isa.RV, isa.RV, genRegs[i])
		}
	}
	b.Halt()
	return b.MustBuild()
}

// genBody emits one loop body: loads, a random dataflow DAG across several
// chains, optional data-dependent skips, optional stores, accumulation.
func genBody(b *prog.Builder, r *rng, tr traits, loopIdx int, logWords int) {
	chains := tr.ilp
	if chains > len(genRegs) {
		chains = len(genRegs)
	}
	if chains < 1 {
		chains = 1
	}
	live := genRegs[:chains]
	mask4 := int64((1<<logWords)-1) << 2 // word-aligned offset mask

	// Loads.
	for m := 0; m < tr.memLoads; m++ {
		dst := live[r.intn(len(live))]
		if tr.chase {
			// next = arr[next & mask]: serial, cache-hostile.
			b.Slli(idxReg, dst, 2)
			b.Andi(idxReg, idxReg, mask4)
			b.Add(idxReg, idxReg, baseReg)
			b.Ldw(dst, idxReg, 0)
		} else {
			// Streaming: advance the pointer, wrap via mask.
			b.Addi(ptrReg, ptrReg, int64(4*(1+r.intn(4))))
			b.Sub(idxReg, ptrReg, baseReg)
			b.Andi(idxReg, idxReg, mask4)
			b.Add(idxReg, idxReg, baseReg)
			b.Ldw(dst, idxReg, 0)
		}
	}

	// Compute DAG.
	for i := 0; i < tr.bodyOps; i++ {
		d := live[r.intn(len(live))]
		s1 := live[r.intn(len(live))]
		s2 := live[r.intn(len(live))]
		switch {
		case tr.mulFrac > 0 && r.chance(tr.mulFrac):
			b.Mul(d, s1, s2)
		default:
			switch r.intn(5) {
			case 0:
				b.Add(d, s1, s2)
			case 1:
				b.Xor(d, s1, s2)
			case 2:
				b.Sub(d, s1, s2)
			case 3:
				b.Addi(d, s1, int64(r.intn(255)+1))
			case 4:
				b.Slli(idxReg, s1, int64(1+r.intn(3)))
				b.Xor(d, idxReg, s2)
			}
		}
		// Data-dependent skip.
		if r.chance(tr.branchy / float64(tr.bodyOps) * 3) {
			skip := fmt.Sprintf("S%d_%d", loopIdx, i)
			t := live[r.intn(len(live))]
			b.Andi(idxReg, t, int64(1+r.intn(7)))
			b.Beqz(idxReg, skip)
			extra := live[r.intn(len(live))]
			b.Addi(extra, extra, 1)
			b.Xori(extra, extra, int64(r.intn(255)))
			b.Label(skip)
		}
	}

	// Optional store.
	if r.chance(tr.stores) {
		v := live[r.intn(len(live))]
		b.Slli(idxReg, v, 2)
		b.Andi(idxReg, idxReg, mask4)
		b.Add(idxReg, idxReg, baseReg)
		b.Stw(v, idxReg, 0)
	}
}

// registerGenerated fills each suite with generated programs whose traits
// sweep the suite's characteristic behaviour.
func registerGenerated(suite string, count int, base traits, seed0 uint64) {
	for i := 0; i < count; i++ {
		tr := base
		seed := seed0 + uint64(i)*0x1111
		r := rng{s: seed}
		// Sweep around the base traits so the population is diverse.
		tr.bodyOps = base.bodyOps + r.intn(base.bodyOps+1)
		tr.ilp = 1 + (base.ilp+r.intn(base.ilp+1))/2*1
		if tr.ilp > 8 {
			tr.ilp = 8
		}
		tr.memLoads = base.memLoads + r.intn(2)
		tr.loops = 1 + r.intn(base.loops)
		tr.calls = base.calls && r.chance(0.5)
		name := fmt.Sprintf("%s.gen%02d", suite, i)
		w := &Workload{Name: name, Suite: suite}
		trc := tr
		w.build = func(scale int) (*prog.Program, uint32, bool) {
			return genProgram(name, seed, trc, scale), 0, false
		}
		register(w)
	}
}

func init() {
	// SPECint-like: branchy, pointer-heavy, modest ILP.
	registerGenerated("intx", 13, traits{
		loops: 3, bodyOps: 12, ilp: 5, memLoads: 2,
		stores: 0.4, branchy: 0.8, chase: false, calls: true,
		arrayLog: 9, mulFrac: 0.05,
	}, 0x51EC1)
	// MediaBench-like: regular, high ILP, stream loads, few branches.
	registerGenerated("media", 12, traits{
		loops: 2, bodyOps: 20, ilp: 8, memLoads: 3,
		stores: 0.5, branchy: 0.1, chase: false, calls: false,
		arrayLog: 9, mulFrac: 0.1,
	}, 0x3ED1A)
	// CommBench-like: streaming with moderate ILP and some branches.
	registerGenerated("comm", 11, traits{
		loops: 2, bodyOps: 16, ilp: 6, memLoads: 3,
		stores: 0.3, branchy: 0.4, chase: false, calls: false,
		arrayLog: 10, mulFrac: 0.0,
	}, 0xC0111)
	// MiBench-like: small kernels, mixed behaviour, some pointer chasing.
	registerGenerated("embed", 12, traits{
		loops: 2, bodyOps: 10, ilp: 4, memLoads: 2,
		stores: 0.3, branchy: 0.5, chase: true, calls: false,
		arrayLog: 8, mulFrac: 0.05,
	}, 0xE3BED)
}
