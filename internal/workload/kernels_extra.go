package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// --- comm: base64 encoding ---

const b64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// base64Ref encodes 3-byte groups and checksums the output characters.
func base64Ref(data []byte) uint32 {
	var sum uint32
	for i := 0; i+3 <= len(data); i += 3 {
		v := uint32(data[i])<<16 | uint32(data[i+1])<<8 | uint32(data[i+2])
		for s := 18; s >= 0; s -= 6 {
			sum = sum*33 + uint32(b64Alphabet[v>>uint(s)&0x3f])
		}
	}
	return sum
}

func buildBase64(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	n -= n % 3
	data := sampleBytes(n, 0xBA5E64)
	want := base64Ref(data)

	b := prog.NewBuilder("comm.base64")
	buf := b.Bytes(data)
	alpha := b.Bytes([]byte(b64Alphabet))
	// r1 ptr, r2 groups, r3 sum, r4 v, r5 shift, r6..r9 temps
	b.Li(1, buf)
	b.Li(2, int64(n/3))
	b.Li(3, 0)
	b.Label("group")
	b.Ldb(4, 1, 0)
	b.Slli(4, 4, 16)
	b.Ldb(6, 1, 1)
	b.Slli(6, 6, 8)
	b.Or(4, 4, 6)
	b.Ldb(6, 1, 2)
	b.Or(4, 4, 6)
	b.Li(5, 18)
	b.Label("sextet")
	b.Srl(6, 4, 5)
	b.Andi(6, 6, 0x3f)
	b.Li(7, alpha)
	b.Add(7, 7, 6)
	b.Ldb(8, 7, 0)
	b.Li(9, 33)
	b.Mul(3, 3, 9)
	b.Add(3, 3, 8)
	b.Subi(5, 5, 6)
	b.Bgez(5, "sextet")
	b.Addi(1, 1, 3)
	b.Subi(2, 2, 1)
	b.Bnez(2, "group")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- comm: CRC-16/CCITT ---

func crc16Ref(data []byte) uint32 {
	crc := uint32(0xFFFF)
	for _, c := range data {
		crc ^= uint32(c) << 8
		for k := 0; k < 8; k++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
			crc &= 0xFFFF
		}
	}
	return crc
}

func buildCRC16(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	data := sampleBytes(n, 0xC2C16)
	want := crc16Ref(data)

	b := prog.NewBuilder("comm.crc16")
	buf := b.Bytes(data)
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0xFFFF)
	b.Label("byte")
	b.Ldb(4, 1, 0)
	b.Slli(4, 4, 8)
	b.Xor(3, 3, 4)
	b.Li(5, 8)
	b.Label("bit")
	b.Andi(6, 3, 0x8000)
	b.Slli(3, 3, 1)
	b.Beqz(6, "nopoly")
	b.Xori(3, 3, 0x1021)
	b.Label("nopoly")
	b.Andi(3, 3, 0xFFFF)
	b.Subi(5, 5, 1)
	b.Bnez(5, "bit")
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "byte")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- media: quantization (JPEG-style divide-and-clamp) ---

func quantRef(in []int32, q []int32) uint32 {
	var sum uint32
	for i, v := range in {
		d := q[i%len(q)]
		r := v / d
		if r > 127 {
			r = 127
		}
		if r < -128 {
			r = -128
		}
		sum = sum*31 + uint32(r)&0xff
	}
	return sum
}

func buildQuant(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	in := sampleWave(n, 0x9A47)
	q := []int32{16, 11, 10, 16, 24, 40, 51, 61}
	want := quantRef(in, q)

	b := prog.NewBuilder("media.quant")
	inW := make([]uint32, n)
	for i, v := range in {
		inW[i] = uint32(v)
	}
	buf := b.Words(inW...)
	var qw []uint32
	for _, v := range q {
		qw = append(qw, uint32(v))
	}
	qtab := b.Words(qw...)

	// r1 ptr, r2 count, r3 sum, r4 qidx, r5..r9 temps
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Label("loop")
	b.Ldw(5, 1, 0)
	b.Slli(6, 4, 2)
	b.Li(7, qtab)
	b.Add(6, 6, 7)
	b.Ldw(6, 6, 0) // divisor
	b.Div(5, 5, 6)
	b.Li(7, 127)
	b.CmpLt(8, 7, 5)
	b.Beqz(8, "c1")
	b.Mov(5, 7)
	b.Label("c1")
	b.Li(7, -128)
	b.CmpLt(8, 5, 7)
	b.Beqz(8, "c2")
	b.Mov(5, 7)
	b.Label("c2")
	b.Andi(5, 5, 0xff)
	b.Li(7, 31)
	b.Mul(3, 3, 7)
	b.Add(3, 3, 5)
	b.Addi(4, 4, 1)
	b.Andi(4, 4, 7)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- media: 1-D gradient (Sobel-like edge measure) ---

func gradRef(in []int32, thresh int32) uint32 {
	var edges, energy uint32
	for i := 1; i+1 < len(in); i++ {
		g := in[i+1] - in[i-1]
		if g < 0 {
			g = -g
		}
		energy += uint32(g)
		if g > thresh {
			edges++
		}
	}
	return energy ^ edges<<20
}

func buildGrad(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale) * 2
	in := sampleWave(n, 0x50BE1)
	const thresh = 2000
	want := gradRef(in, thresh)

	b := prog.NewBuilder("media.grad")
	inW := make([]uint32, n)
	for i, v := range in {
		inW[i] = uint32(v)
	}
	buf := b.Words(inW...)
	// r1 ptr (at in[i-1]), r2 count, r3 energy, r4 edges
	b.Li(1, buf)
	b.Li(2, int64(n-2))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Label("loop")
	b.Ldw(5, 1, 8) // in[i+1]
	b.Ldw(6, 1, 0) // in[i-1]
	b.Sub(5, 5, 6)
	b.Bgez(5, "abs")
	b.Sub(5, isa.ZeroReg, 5)
	b.Label("abs")
	b.Add(3, 3, 5)
	b.CmpLti(6, 5, thresh+1)
	b.Bnez(6, "noedge")
	b.Addi(4, 4, 1)
	b.Label("noedge")
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Slli(4, 4, 20)
	b.Xor(0, 3, 4)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- intx: heapsort ---

func heapsortRef(vals []uint32) uint32 {
	s := append([]uint32(nil), vals...)
	n := len(s)
	// Mirror the assembly exactly: iterative sift-down.
	sift := func(start, end int) {
		root := start
		for {
			child := 2*root + 1
			if child > end {
				return
			}
			if child+1 <= end && s[child] < s[child+1] {
				child++
			}
			if s[root] >= s[child] {
				return
			}
			s[root], s[child] = s[child], s[root]
			root = child
		}
	}
	for start := n/2 - 1; start >= 0; start-- {
		sift(start, n-1)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		sift(0, end-1)
	}
	var sum uint32
	for i, v := range s {
		sum += v ^ uint32(i)
	}
	return sum
}

func buildHeapsort(scale int) (*prog.Program, uint32, bool) {
	n := intxSize(scale)
	r := rng{s: 0x8EA9}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.next()) % 1000000
	}
	want := heapsortRef(vals)

	b := prog.NewBuilder("intx.heapsort")
	arr := b.Words(vals...)

	// sift(start=r3, end=r4): root=r5; uses r6 child, r7/r8/r9 temps.
	// Main: phase 1 start = n/2-1 .. 0; phase 2 end = n-1 .. 1.
	b.Li(1, arr)
	b.Li(3, int64(n/2-1))
	b.Label("ph1")
	b.Bltz(3, "ph2init")
	b.Li(4, int64(n-1))
	b.Jsr("sift")
	b.Subi(3, 3, 1)
	b.Br("ph1")
	b.Label("ph2init")
	b.Li(10, int64(n-1)) // end
	b.Label("ph2")
	b.Beqz(10, "done")
	// swap s[0], s[end]
	b.Slli(6, 10, 2)
	b.Add(6, 6, 1)
	b.Ldw(7, 1, 0)
	b.Ldw(8, 6, 0)
	b.Stw(8, 1, 0)
	b.Stw(7, 6, 0)
	b.Li(3, 0)
	b.Subi(4, 10, 1)
	b.Jsr("sift")
	b.Subi(10, 10, 1)
	b.Br("ph2")

	b.Label("sift") // args r3=start, r4=end; clobbers r5..r9
	b.Mov(5, 3)
	b.Label("siftloop")
	b.Slli(6, 5, 1)
	b.Addi(6, 6, 1)  // child = 2root+1
	b.CmpLt(7, 4, 6) // end < child?
	b.Bnez(7, "siftret")
	// child+1 <= end && s[child] < s[child+1] -> child++
	b.CmpLt(7, 6, 4) // child < end  (i.e. child+1 <= end)
	b.Beqz(7, "nochild2")
	b.Slli(8, 6, 2)
	b.Add(8, 8, 1)
	b.Ldw(9, 8, 0) // s[child]
	b.Ldw(8, 8, 4) // s[child+1]
	b.CmpUlt(7, 9, 8)
	b.Beqz(7, "nochild2")
	b.Addi(6, 6, 1)
	b.Label("nochild2")
	// if s[root] >= s[child] return
	b.Slli(7, 5, 2)
	b.Add(7, 7, 1)
	b.Ldw(8, 7, 0) // s[root]
	b.Slli(9, 6, 2)
	b.Add(9, 9, 1)
	b.Ldw(11, 9, 0) // s[child]
	b.CmpUlt(12, 8, 11)
	b.Beqz(12, "siftret")
	// swap, root = child
	b.Stw(11, 7, 0)
	b.Stw(8, 9, 0)
	b.Mov(5, 6)
	b.Br("siftloop")
	b.Label("siftret")
	b.Ret()

	b.Label("done")
	// checksum = sum s[i] ^ i
	b.Li(2, int64(n))
	b.Li(3, 0) // i
	b.Li(4, 0) // sum
	b.Label("ck")
	b.Slli(5, 3, 2)
	b.Add(5, 5, 1)
	b.Ldw(5, 5, 0)
	b.Xor(5, 5, 3)
	b.Add(4, 4, 5)
	b.Addi(3, 3, 1)
	b.CmpLt(6, 3, 2)
	b.Bnez(6, "ck")
	b.Mov(0, 4)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- intx: sieve of Eratosthenes ---

func sieveRef(limit int) uint32 {
	composite := make([]bool, limit)
	var count, last uint32
	for i := 2; i < limit; i++ {
		if composite[i] {
			continue
		}
		count++
		last = uint32(i)
		for j := i * i; j < limit; j += i {
			composite[j] = true
		}
	}
	return count<<16 ^ last
}

func buildSieve(scale int) (*prog.Program, uint32, bool) {
	limit := 2048 << scale
	want := sieveRef(limit)

	b := prog.NewBuilder("intx.sieve")
	tab := b.Space(limit)
	// r1 tab, r2 limit, r3 i, r4 count, r5 last, r6 j, r7 temps
	b.Li(1, tab)
	b.Li(2, int64(limit))
	b.Li(3, 2)
	b.Li(4, 0)
	b.Li(5, 0)
	b.Label("outer")
	b.CmpLt(7, 3, 2)
	b.Beqz(7, "done")
	b.Add(7, 1, 3)
	b.Ldb(8, 7, 0)
	b.Bnez(8, "next")
	b.Addi(4, 4, 1)
	b.Mov(5, 3)
	b.Mul(6, 3, 3) // j = i*i
	b.Label("mark")
	b.CmpLt(7, 6, 2)
	b.Beqz(7, "next")
	b.Add(7, 1, 6)
	b.Li(8, 1)
	b.Stb(8, 7, 0)
	b.Add(6, 6, 3)
	b.Br("mark")
	b.Label("next")
	b.Addi(3, 3, 1)
	b.Br("outer")
	b.Label("done")
	b.Slli(4, 4, 16)
	b.Xor(0, 4, 5)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- embed: N-queens (recursive backtracking) ---

func queensRef(n int) uint32 {
	var count uint32
	var cols, diag1, diag2 uint32
	var rec func(row int)
	rec = func(row int) {
		if row == n {
			count++
			return
		}
		for c := 0; c < n; c++ {
			cb := uint32(1) << c
			d1 := uint32(1) << (row + c)
			d2 := uint32(1) << (row - c + n - 1)
			if cols&cb != 0 || diag1&d1 != 0 || diag2&d2 != 0 {
				continue
			}
			cols |= cb
			diag1 |= d1
			diag2 |= d2
			rec(row + 1)
			cols &^= cb
			diag1 &^= d1
			diag2 &^= d2
		}
	}
	rec(0)
	return count
}

// buildQueens: recursive backtracking with globals in memory; exercises
// calls, stack traffic and data-dependent branching.
func buildQueens(scale int) (*prog.Program, uint32, bool) {
	n := 6 + scale // 6 or 7 queens
	want := queensRef(n)

	b := prog.NewBuilder("embed.queens")
	state := b.Words(0, 0, 0, 0) // cols, diag1, diag2, count
	b.Li(1, 0)                   // row argument
	b.Jsr("rec")
	b.Li(9, state)
	b.Ldw(0, 9, 12)
	b.Halt()

	// rec(row=r1): uses r9 state base, r2 col, r3 cb, r4 d1, r5 d2,
	// r6/r7/r8 temps. Saves ra, row, col across the recursive call.
	b.Label("rec")
	b.CmpEqi(6, 1, int64(n))
	b.Beqz(6, "search")
	b.Li(9, state)
	b.Ldw(6, 9, 12)
	b.Addi(6, 6, 1)
	b.Stw(6, 9, 12)
	b.Ret()
	b.Label("search")
	b.Li(2, 0) // col
	b.Label("colloop")
	b.CmpLti(6, 2, int64(n))
	b.Beqz(6, "recret")
	// masks
	b.Li(6, 1)
	b.Sll(3, 6, 2) // cb = 1 << col
	b.Add(7, 1, 2)
	b.Sll(4, 6, 7) // d1 = 1 << (row+col)
	b.Sub(7, 1, 2)
	b.Addi(7, 7, int64(n-1))
	b.Sll(5, 6, 7) // d2
	b.Li(9, state)
	b.Ldw(6, 9, 0) // cols
	b.And(7, 6, 3)
	b.Bnez(7, "nextcol")
	b.Ldw(6, 9, 4)
	b.And(7, 6, 4)
	b.Bnez(7, "nextcol")
	b.Ldw(6, 9, 8)
	b.And(7, 6, 5)
	b.Bnez(7, "nextcol")
	// place
	b.Ldw(6, 9, 0)
	b.Or(6, 6, 3)
	b.Stw(6, 9, 0)
	b.Ldw(6, 9, 4)
	b.Or(6, 6, 4)
	b.Stw(6, 9, 4)
	b.Ldw(6, 9, 8)
	b.Or(6, 6, 5)
	b.Stw(6, 9, 8)
	// recurse
	b.Subi(isa.SP, isa.SP, 12)
	b.Stw(isa.RA, isa.SP, 0)
	b.Stw(1, isa.SP, 4)
	b.Stw(2, isa.SP, 8)
	b.Addi(1, 1, 1)
	b.Jsr("rec")
	b.Ldw(isa.RA, isa.SP, 0)
	b.Ldw(1, isa.SP, 4)
	b.Ldw(2, isa.SP, 8)
	b.Addi(isa.SP, isa.SP, 12)
	// unplace: recompute masks (registers were clobbered by the callee)
	b.Li(6, 1)
	b.Sll(3, 6, 2)
	b.Add(7, 1, 2)
	b.Sll(4, 6, 7)
	b.Sub(7, 1, 2)
	b.Addi(7, 7, int64(n-1))
	b.Sll(5, 6, 7)
	b.Li(9, state)
	b.Ldw(6, 9, 0)
	b.Xor(6, 6, 3)
	b.Stw(6, 9, 0)
	b.Ldw(6, 9, 4)
	b.Xor(6, 6, 4)
	b.Stw(6, 9, 4)
	b.Ldw(6, 9, 8)
	b.Xor(6, 6, 5)
	b.Stw(6, 9, 8)
	b.Label("nextcol")
	b.Addi(2, 2, 1)
	b.Br("colloop")
	b.Label("recret")
	b.Ret()
	return b.MustBuild(), want, true
}

// --- embed: KMP string search ---

func kmpRef(text, pat []byte) uint32 {
	// Failure function.
	f := make([]int, len(pat))
	k := 0
	for i := 1; i < len(pat); i++ {
		for k > 0 && pat[k] != pat[i] {
			k = f[k-1]
		}
		if pat[k] == pat[i] {
			k++
		}
		f[i] = k
	}
	var count uint32
	k = 0
	for _, c := range text {
		for k > 0 && pat[k] != c {
			k = f[k-1]
		}
		if pat[k] == c {
			k++
		}
		if k == len(pat) {
			count++
			k = f[k-1]
		}
	}
	return count
}

func buildKMP(scale int) (*prog.Program, uint32, bool) {
	n := 2048 << scale
	r := rng{s: 0x6A3F}
	text := make([]byte, n)
	for i := range text {
		text[i] = byte('a' + r.intn(3))
	}
	pat := []byte("abab")
	want := kmpRef(text, pat)
	m := len(pat)

	// Precompute the failure function on the host; the program performs
	// the scan (the hot loop) against the table, like a real matcher with
	// a compiled pattern.
	f := make([]uint32, m)
	k := 0
	for i := 1; i < m; i++ {
		for k > 0 && pat[k] != pat[i] {
			k = int(f[k-1])
		}
		if pat[k] == pat[i] {
			k++
		}
		f[i] = uint32(k)
	}

	b := prog.NewBuilder("embed.kmp")
	textA := b.Bytes(text)
	patA := b.Bytes(pat)
	failA := b.Words(f...)
	// r1 text ptr, r2 remaining, r3 k, r4 count, r5 c, r6..r9 temps
	b.Li(1, textA)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Label("scan")
	b.Ldb(5, 1, 0)
	b.Label("fall")
	b.Beqz(3, "cmp")
	b.Li(6, patA)
	b.Add(6, 6, 3)
	b.Ldb(7, 6, 0) // pat[k]
	b.CmpEq(8, 7, 5)
	b.Bnez(8, "cmp")
	b.Subi(6, 3, 1)
	b.Slli(6, 6, 2)
	b.Li(7, failA)
	b.Add(6, 6, 7)
	b.Ldw(3, 6, 0) // k = f[k-1]
	b.Br("fall")
	b.Label("cmp")
	b.Li(6, patA)
	b.Add(6, 6, 3)
	b.Ldb(7, 6, 0)
	b.CmpEq(8, 7, 5)
	b.Beqz(8, "nomatchadv")
	b.Addi(3, 3, 1)
	b.Label("nomatchadv")
	b.CmpEqi(8, 3, int64(m))
	b.Beqz(8, "adv")
	b.Addi(4, 4, 1)
	b.Subi(6, 3, 1)
	b.Slli(6, 6, 2)
	b.Li(7, failA)
	b.Add(6, 6, 7)
	b.Ldw(3, 6, 0)
	b.Label("adv")
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "scan")
	b.Mov(0, 4)
	b.Halt()
	return b.MustBuild(), want, true
}

func init() {
	register(&Workload{Name: "comm.base64", Suite: "comm", build: buildBase64})
	register(&Workload{Name: "comm.crc16", Suite: "comm", build: buildCRC16})
	register(&Workload{Name: "media.quant", Suite: "media", build: buildQuant})
	register(&Workload{Name: "media.grad", Suite: "media", build: buildGrad})
	register(&Workload{Name: "intx.heapsort", Suite: "intx", build: buildHeapsort})
	register(&Workload{Name: "intx.sieve", Suite: "intx", build: buildSieve})
	register(&Workload{Name: "embed.queens", Suite: "embed", build: buildQueens})
	register(&Workload{Name: "embed.kmp", Suite: "embed", build: buildKMP})
}
