package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/minigraph"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 78 {
		t.Fatalf("registry holds %d workloads, want 78 (like the paper)", len(all))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, w := range all {
		counts[w.Suite]++
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
	}
	want := map[string]int{"intx": 20, "media": 20, "comm": 19, "embed": 19}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("suite %s has %d workloads, want %d", s, counts[s], n)
		}
	}
}

func TestFindAndBySuite(t *testing.T) {
	if Find("comm.crc32") == nil {
		t.Error("Find(comm.crc32) = nil")
	}
	if Find("no.such") != nil {
		t.Error("Find(no.such) should be nil")
	}
	for _, s := range Suites() {
		if len(BySuite(s)) == 0 {
			t.Errorf("suite %s empty", s)
		}
	}
}

func TestUnknownInput(t *testing.T) {
	w := Find("comm.crc32")
	if _, _, _, err := w.Build("nope"); err == nil {
		t.Error("unknown input set should error")
	}
}

// TestHandKernelsVerify runs every verified kernel in the emulator and
// checks the checksum against the independent Go reference.
func TestHandKernelsVerify(t *testing.T) {
	for _, w := range All() {
		for _, input := range Inputs {
			p, want, verified, err := w.Build(input)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, input, err)
			}
			if !verified {
				continue
			}
			res, err := emu.Run(p, emu.Options{})
			if err != nil {
				t.Errorf("%s/%s: %v", w.Name, input, err)
				continue
			}
			if got := res.Checksum(); got != want {
				t.Errorf("%s/%s: checksum %#x, want %#x", w.Name, input, got, want)
			}
		}
	}
}

// TestAllWorkloadsRun ensures every workload (including generated ones)
// terminates with a reasonable dynamic instruction count.
func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		p, _, _, err := w.Build("small")
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := emu.Run(p, emu.Options{MaxInstrs: 32 << 20})
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if res.DynInstrs < 1000 {
			t.Errorf("%s: only %d dynamic instructions — too trivial", w.Name, res.DynInstrs)
		}
		if res.DynInstrs > 8<<20 {
			t.Errorf("%s: %d dynamic instructions — too long for the sweep harness", w.Name, res.DynInstrs)
		}
	}
}

func TestLargeInputsBigger(t *testing.T) {
	for _, name := range []string{"comm.crc32", "intx.qsort", "embed.fib", "media.dct8"} {
		w := Find(name)
		ps, _, _, _ := w.Build("small")
		pl, _, _, _ := w.Build("large")
		rs, err1 := emu.Run(ps, emu.Options{})
		rl, err2 := emu.Run(pl, emu.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", name, err1, err2)
		}
		if rl.DynInstrs <= rs.DynInstrs {
			t.Errorf("%s: large (%d) not bigger than small (%d)", name, rl.DynInstrs, rs.DynInstrs)
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	for _, name := range []string{"intx.gen00", "media.gen03", "comm.gen07", "embed.gen11"} {
		w := Find(name)
		if w == nil {
			t.Fatalf("missing generated workload %s", name)
		}
		p1, _, _, _ := w.Build("small")
		p2, _, _, _ := w.Build("small")
		r1, err1 := emu.Run(p1, emu.Options{})
		r2, err2 := emu.Run(p2, emu.Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", name, err1, err2)
		}
		if r1.Checksum() != r2.Checksum() || r1.DynInstrs != r2.DynInstrs {
			t.Errorf("%s: nondeterministic build", name)
		}
	}
}

// TestWorkloadsHaveCandidates checks that the suite gives mini-graph
// selection something to work with: every workload should have candidate
// windows, and most should have potentially-serializing ones (so the
// selectors actually differ).
func TestWorkloadsHaveCandidates(t *testing.T) {
	withCands, withSer := 0, 0
	for _, w := range All() {
		p, _, _, err := w.Build("small")
		if err != nil {
			t.Fatal(err)
		}
		cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
		if len(cands) > 0 {
			withCands++
		}
		for _, c := range cands {
			if c.Serializing() {
				withSer++
				break
			}
		}
	}
	if withCands != 78 {
		t.Errorf("only %d/78 workloads have mini-graph candidates", withCands)
	}
	if withSer < 60 {
		t.Errorf("only %d/78 workloads have serializing candidates — selectors won't differ", withSer)
	}
}
