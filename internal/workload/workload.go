// Package workload provides the benchmark suite: 78 programs in four
// suites mirroring the paper's mix (SPECint2000, MediaBench, CommBench,
// MiBench):
//
//	intx  — integer codes: sorting, hashing, pointer chasing, branchy logic
//	media — kernels over sample streams: ADPCM, DCT, FIR, bit packing
//	comm  — packet-processing codes: CRC, checksums, RLE, mixers
//	embed — embedded kernels: dijkstra, string search, matmul, bitcount
//
// Hand-written kernels are real algorithm implementations in the toy ISA,
// verified against Go reference implementations. The remainder of each
// suite is filled by a seeded parametric generator that sweeps instruction-
// level parallelism, memory intensity, branch entropy and loop shape, so
// the population spans the same behavioural axes as the paper's 78
// programs. Every workload has two input sets ("small", "large") for the
// cross-input robustness experiments.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/prog"
)

// Inputs lists the available input-set names.
var Inputs = []string{"small", "large"}

// Workload is one benchmark program family.
type Workload struct {
	Name  string
	Suite string
	// build constructs the program for a scale (0 = small, 1 = large) and
	// returns the expected result checksum. verified is false for
	// generated workloads whose checksum is a self-consistency value
	// rather than an independently computed reference.
	build func(scale int) (p *prog.Program, want uint32, verified bool)
}

// Build constructs the program for the named input set.
func (w *Workload) Build(input string) (*prog.Program, uint32, bool, error) {
	scale := -1
	for i, in := range Inputs {
		if in == input {
			scale = i
		}
	}
	if scale < 0 {
		return nil, 0, false, fmt.Errorf("workload %s: unknown input set %q", w.Name, input)
	}
	p, want, verified := w.build(scale)
	return p, want, verified, nil
}

var registry []*Workload

func register(w *Workload) {
	registry = append(registry, w)
}

// All returns every workload, ordered by suite then name.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the workloads of one suite.
func BySuite(suite string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// Find returns the workload with the given name, or nil.
func Find(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Suites lists the suite names.
func Suites() []string { return []string{"comm", "embed", "intx", "media"} }
