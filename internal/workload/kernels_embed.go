package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// dijkstraRef computes single-source shortest paths over an adjacency
// matrix (O(V^2) selection, no heap) and checksums the distance vector.
func dijkstraRef(adj []uint32, v int) uint32 {
	const inf = 0x3fffffff
	dist := make([]uint32, v)
	done := make([]bool, v)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	for iter := 0; iter < v; iter++ {
		best, bi := uint32(inf+1), -1
		for i := 0; i < v; i++ {
			if !done[i] && dist[i] < best {
				best, bi = dist[i], i
			}
		}
		if bi < 0 {
			break
		}
		done[bi] = true
		for j := 0; j < v; j++ {
			w := adj[bi*v+j]
			if w != 0 && dist[bi]+w < dist[j] {
				dist[j] = dist[bi] + w
			}
		}
	}
	var sum uint32
	for i, d := range dist {
		sum += d * uint32(i+1)
	}
	return sum
}

func buildDijkstra(scale int) (*prog.Program, uint32, bool) {
	v := 24 + 16*scale
	r := rng{s: 0xD1135}
	adj := make([]uint32, v*v)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			if i != j && r.chance(0.35) {
				adj[i*v+j] = uint32(r.intn(99) + 1)
			}
		}
	}
	want := dijkstraRef(adj, v)

	const inf = 0x3fffffff
	b := prog.NewBuilder("embed.dijkstra")
	adjA := b.Words(adj...)
	distW := make([]uint32, v)
	for i := range distW {
		distW[i] = inf
	}
	distW[0] = 0
	distA := b.Words(distW...)
	doneA := b.Space(4 * v)

	// r1=v, r2=iter, r3=best, r4=bi, r5=i/j, r6..r13 temps
	b.Li(1, int64(v))
	b.Li(2, 0)
	b.Label("iter")
	// selection: best=inf+1, bi=-1
	b.Li(3, inf+1)
	b.Li(4, -1)
	b.Li(5, 0)
	b.Label("sel")
	b.Slli(6, 5, 2)
	b.Li(7, doneA)
	b.Add(7, 7, 6)
	b.Ldw(8, 7, 0) // done[i]
	b.Bnez(8, "selnext")
	b.Li(7, distA)
	b.Add(7, 7, 6)
	b.Ldw(8, 7, 0) // dist[i]
	b.CmpUlt(9, 8, 3)
	b.Beqz(9, "selnext")
	b.Mov(3, 8)
	b.Mov(4, 5)
	b.Label("selnext")
	b.Addi(5, 5, 1)
	b.CmpLt(9, 5, 1)
	b.Bnez(9, "sel")
	b.Bltz(4, "finish") // no reachable node left
	// done[bi] = 1
	b.Slli(6, 4, 2)
	b.Li(7, doneA)
	b.Add(7, 7, 6)
	b.Li(8, 1)
	b.Stw(8, 7, 0)
	// relax: for j: w = adj[bi*v+j]
	b.Mul(10, 4, 1) // bi*v
	b.Slli(10, 10, 2)
	b.Li(7, adjA)
	b.Add(10, 10, 7) // row ptr
	b.Li(5, 0)
	b.Label("relax")
	b.Slli(6, 5, 2)
	b.Add(7, 10, 6)
	b.Ldw(8, 7, 0) // w
	b.Beqz(8, "rnext")
	b.Add(8, 8, 3) // dist[bi]+w (r3 still holds dist[bi])
	b.Li(7, distA)
	b.Add(7, 7, 6)
	b.Ldw(9, 7, 0) // dist[j]
	b.CmpUlt(11, 8, 9)
	b.Beqz(11, "rnext")
	b.Stw(8, 7, 0)
	b.Label("rnext")
	b.Addi(5, 5, 1)
	b.CmpLt(9, 5, 1)
	b.Bnez(9, "relax")
	b.Addi(2, 2, 1)
	b.CmpLt(9, 2, 1)
	b.Bnez(9, "iter")
	b.Label("finish")
	// checksum = sum dist[i]*(i+1)
	b.Li(5, 0)
	b.Li(12, 0)
	b.Label("ck")
	b.Slli(6, 5, 2)
	b.Li(7, distA)
	b.Add(7, 7, 6)
	b.Ldw(8, 7, 0)
	b.Addi(9, 5, 1)
	b.Mul(8, 8, 9)
	b.Add(12, 12, 8)
	b.Addi(5, 5, 1)
	b.CmpLt(9, 5, 1)
	b.Bnez(9, "ck")
	b.Mov(0, 12)
	b.Halt()
	return b.MustBuild(), want, true
}

// strsearchRef counts occurrences of pattern in text (naive scan).
func strsearchRef(text, pat []byte) uint32 {
	var count uint32
	for i := 0; i+len(pat) <= len(text); i++ {
		j := 0
		for j < len(pat) && text[i+j] == pat[j] {
			j++
		}
		if j == len(pat) {
			count++
		}
	}
	return count
}

func buildStrsearch(scale int) (*prog.Program, uint32, bool) {
	n := 2048 << scale
	r := rng{s: 0x57E5}
	// Text over a tiny alphabet so partial matches are common.
	text := make([]byte, n)
	for i := range text {
		text[i] = byte('a' + r.intn(4))
	}
	pat := []byte("abca")
	want := strsearchRef(text, pat)

	b := prog.NewBuilder("embed.strsearch")
	textA := b.Bytes(text)
	patA := b.Bytes(pat)
	m := len(pat)
	// r1 = i ptr, r2 = end ptr, r3 = count, r4 = j, r5..r9 temps
	b.Li(1, textA)
	b.Li(2, textA+int64(n-m))
	b.Li(3, 0)
	b.Label("outer")
	b.CmpUlt(5, 2, 1) // end < i ?
	b.Bnez(5, "done")
	b.Li(4, 0)
	b.Label("cmp")
	b.CmpLti(5, 4, int64(m))
	b.Beqz(5, "match")
	b.Add(6, 1, 4)
	b.Ldb(7, 6, 0)
	b.Li(8, patA)
	b.Add(8, 8, 4)
	b.Ldb(9, 8, 0)
	b.CmpEq(5, 7, 9)
	b.Beqz(5, "nomatch")
	b.Addi(4, 4, 1)
	b.Br("cmp")
	b.Label("match")
	b.Addi(3, 3, 1)
	b.Label("nomatch")
	b.Addi(1, 1, 1)
	b.Br("outer")
	b.Label("done")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// matmulRef multiplies two NxN matrices and checksums the product.
func matmulRef(a, c []uint32, n int) uint32 {
	out := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * c[k*n+j]
			}
			out[i*n+j] = acc
		}
	}
	var sum uint32
	for i, v := range out {
		sum += v ^ uint32(i)
	}
	return sum
}

func buildMatmul(scale int) (*prog.Program, uint32, bool) {
	n := 12 + 6*scale
	r := rng{s: 0x3A73}
	a := make([]uint32, n*n)
	c := make([]uint32, n*n)
	for i := range a {
		a[i] = uint32(r.intn(1000))
		c[i] = uint32(r.intn(1000))
	}
	want := matmulRef(a, c, n)

	b := prog.NewBuilder("embed.matmul")
	aA := b.Words(a...)
	cA := b.Words(c...)
	oA := b.Space(4 * n * n)
	// r1=i, r2=j, r3=k, r4=acc, r5..r13 temps, r14 = n
	b.Li(14, int64(n))
	b.Li(1, 0)
	b.Label("iloop")
	b.Li(2, 0)
	b.Label("jloop")
	b.Li(3, 0)
	b.Li(4, 0)
	b.Mul(5, 1, 14) // i*n
	b.Label("kloop")
	b.Add(6, 5, 3) // i*n+k
	b.Slli(6, 6, 2)
	b.Li(7, aA)
	b.Add(6, 6, 7)
	b.Ldw(6, 6, 0) // a[i*n+k]
	b.Mul(8, 3, 14)
	b.Add(8, 8, 2) // k*n+j
	b.Slli(8, 8, 2)
	b.Li(7, cA)
	b.Add(8, 8, 7)
	b.Ldw(8, 8, 0) // c[k*n+j]
	b.Mul(6, 6, 8)
	b.Add(4, 4, 6)
	b.Addi(3, 3, 1)
	b.CmpLt(9, 3, 14)
	b.Bnez(9, "kloop")
	// out[i*n+j] = acc
	b.Add(6, 5, 2)
	b.Slli(6, 6, 2)
	b.Li(7, oA)
	b.Add(6, 6, 7)
	b.Stw(4, 6, 0)
	b.Addi(2, 2, 1)
	b.CmpLt(9, 2, 14)
	b.Bnez(9, "jloop")
	b.Addi(1, 1, 1)
	b.CmpLt(9, 1, 14)
	b.Bnez(9, "iloop")
	// checksum
	b.Li(1, 0) // index
	b.Mul(2, 14, 14)
	b.Li(3, 0)
	b.Label("ck")
	b.Slli(6, 1, 2)
	b.Li(7, oA)
	b.Add(6, 6, 7)
	b.Ldw(6, 6, 0)
	b.Xor(6, 6, 1)
	b.Add(3, 3, 6)
	b.Addi(1, 1, 1)
	b.CmpLt(9, 1, 2)
	b.Bnez(9, "ck")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// bitcountRef mirrors the Kernighan popcount kernel.
func bitcountRef(vals []uint32) uint32 {
	var sum uint32
	for _, v := range vals {
		for v != 0 {
			v &= v - 1
			sum++
		}
	}
	return sum
}

func buildBitcount(scale int) (*prog.Program, uint32, bool) {
	n := 1024 << scale
	r := rng{s: 0xB17C7}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.next())
	}
	want := bitcountRef(vals)

	b := prog.NewBuilder("embed.bitcount")
	arr := b.Words(vals...)
	b.Li(1, arr)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Label("word")
	b.Ldw(4, 1, 0)
	b.Label("bits")
	b.Beqz(4, "next")
	b.Subi(5, 4, 1)
	b.And(4, 4, 5)
	b.Addi(3, 3, 1)
	b.Br("bits")
	b.Label("next")
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "word")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// fibRef computes naive recursive Fibonacci.
func fibRef(n int) uint32 {
	if n < 2 {
		return uint32(n)
	}
	return fibRef(n-1) + fibRef(n-2)
}

// buildFib emits a genuinely recursive implementation: real call stack,
// deep return-address-stack traffic, store-load forwarding on spills.
func buildFib(scale int) (*prog.Program, uint32, bool) {
	n := 14 + 3*scale
	want := fibRef(n)
	b := prog.NewBuilder("embed.fib")
	b.Li(1, int64(n))
	b.Jsr("fib")
	b.Halt()

	b.Label("fib") // arg r1, result r0
	b.CmpLti(2, 1, 2)
	b.Beqz(2, "rec")
	b.Mov(0, 1)
	b.Ret()
	b.Label("rec")
	b.Subi(isa.SP, isa.SP, 12)
	b.Stw(isa.RA, isa.SP, 0)
	b.Stw(1, isa.SP, 4)
	b.Subi(1, 1, 1)
	b.Jsr("fib")
	b.Stw(0, isa.SP, 8)
	b.Ldw(1, isa.SP, 4)
	b.Subi(1, 1, 2)
	b.Jsr("fib")
	b.Ldw(2, isa.SP, 8)
	b.Add(0, 0, 2)
	b.Ldw(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 12)
	b.Ret()
	return b.MustBuild(), want, true
}

func init() {
	register(&Workload{Name: "embed.dijkstra", Suite: "embed", build: buildDijkstra})
	register(&Workload{Name: "embed.strsearch", Suite: "embed", build: buildStrsearch})
	register(&Workload{Name: "embed.matmul", Suite: "embed", build: buildMatmul})
	register(&Workload{Name: "embed.bitcount", Suite: "embed", build: buildBitcount})
	register(&Workload{Name: "embed.fib", Suite: "embed", build: buildFib})
}
