package workload

import (
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// IMA ADPCM tables.
var stepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41,
	45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190,
	209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724,
	796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
	2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
	7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
	20350, 22385, 24623, 27086, 29794, 32767,
}

var indexTable = [16]int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

func mediaSize(scale int) int { return 256 << scale } // samples / values

// sampleWave produces deterministic 16-bit samples (stored as int32).
func sampleWave(n int, seed uint64) []int32 {
	r := rng{s: seed}
	out := make([]int32, n)
	acc := int32(0)
	for i := range out {
		// A wandering waveform: bounded random walk, like speech-ish data.
		acc += int32(r.next()%4096) - 2048
		if acc > 30000 {
			acc = 30000
		}
		if acc < -30000 {
			acc = -30000
		}
		out[i] = acc
	}
	return out
}

// adpcmEncRef mirrors the assembly encoder exactly.
func adpcmEncRef(samples []int32) ([]byte, uint32) {
	var pred, index, sum int32
	codes := make([]byte, len(samples))
	for i, s := range samples {
		step := stepTable[index]
		diff := s - pred
		code := int32(0)
		if diff < 0 {
			code = 8
			diff = -diff
		}
		if diff >= step {
			code |= 4
			diff -= step
		}
		if diff >= step>>1 {
			code |= 2
			diff -= step >> 1
		}
		if diff >= step>>2 {
			code |= 1
		}
		diffq := step >> 3
		if code&4 != 0 {
			diffq += step
		}
		if code&2 != 0 {
			diffq += step >> 1
		}
		if code&1 != 0 {
			diffq += step >> 2
		}
		if code&8 != 0 {
			pred -= diffq
		} else {
			pred += diffq
		}
		if pred > 32767 {
			pred = 32767
		}
		if pred < -32768 {
			pred = -32768
		}
		index += indexTable[code]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		sum = sum*31 + code
		codes[i] = byte(code)
	}
	return codes, uint32(sum) ^ uint32(pred)&0xffff ^ uint32(index)<<24
}

func buildADPCMEnc(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	samples := sampleWave(n, 0xADBC5)
	_, want := adpcmEncRef(samples)

	b := prog.NewBuilder("media.adpcm_enc")
	words := make([]uint32, n)
	for i, s := range samples {
		words[i] = uint32(s)
	}
	buf := b.Words(words...)
	stepW := make([]uint32, len(stepTable))
	for i, s := range stepTable {
		stepW[i] = uint32(s)
	}
	steps := b.Words(stepW...)
	idxW := make([]uint32, len(indexTable))
	for i, s := range indexTable {
		idxW[i] = uint32(s)
	}
	idxs := b.Words(idxW...)

	// r1 ptr, r2 count, r3 pred, r4 index, r5 steps, r6 idxs, r7 sum
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Li(5, steps)
	b.Li(6, idxs)
	b.Li(7, 0)
	b.Label("loop")
	b.Ldw(8, 1, 0) // sample
	b.Slli(13, 4, 2)
	b.Add(13, 13, 5)
	b.Ldw(9, 13, 0) // step
	b.Mov(14, 9)    // keep original step
	b.Sub(10, 8, 3) // diff
	b.Li(11, 0)     // code
	b.Bgez(10, "pos")
	b.Li(11, 8)
	b.Sub(10, isa.ZeroReg, 10)
	b.Label("pos")
	b.CmpLt(13, 10, 9)
	b.Bnez(13, "no4")
	b.Ori(11, 11, 4)
	b.Sub(10, 10, 9)
	b.Label("no4")
	b.Srai(9, 9, 1)
	b.CmpLt(13, 10, 9)
	b.Bnez(13, "no2")
	b.Ori(11, 11, 2)
	b.Sub(10, 10, 9)
	b.Label("no2")
	b.Srai(9, 9, 1)
	b.CmpLt(13, 10, 9)
	b.Bnez(13, "no1")
	b.Ori(11, 11, 1)
	b.Label("no1")
	// diffq reconstruction from the original step in r14.
	b.Srai(12, 14, 3)
	b.Andi(13, 11, 4)
	b.Beqz(13, "dq2")
	b.Add(12, 12, 14)
	b.Label("dq2")
	b.Srai(15, 14, 1)
	b.Andi(13, 11, 2)
	b.Beqz(13, "dq1")
	b.Add(12, 12, 15)
	b.Label("dq1")
	b.Srai(15, 14, 2)
	b.Andi(13, 11, 1)
	b.Beqz(13, "dq0")
	b.Add(12, 12, 15)
	b.Label("dq0")
	b.Andi(13, 11, 8)
	b.Beqz(13, "plus")
	b.Sub(3, 3, 12)
	b.Br("clamp")
	b.Label("plus")
	b.Add(3, 3, 12)
	b.Label("clamp")
	b.Li(13, 32767)
	b.CmpLt(15, 13, 3)
	b.Beqz(15, "cl2")
	b.Mov(3, 13)
	b.Label("cl2")
	b.Li(13, -32768)
	b.CmpLt(15, 3, 13)
	b.Beqz(15, "cl3")
	b.Mov(3, 13)
	b.Label("cl3")
	// index += indexTable[code], clamp 0..88
	b.Slli(13, 11, 2)
	b.Add(13, 13, 6)
	b.Ldw(13, 13, 0)
	b.Add(4, 4, 13)
	b.Bgez(4, "ix1")
	b.Li(4, 0)
	b.Label("ix1")
	b.Li(13, 88)
	b.CmpLe(15, 4, 13)
	b.Bnez(15, "ix2")
	b.Li(4, 88)
	b.Label("ix2")
	// sum = sum*31 + code
	b.Li(13, 31)
	b.Mul(7, 7, 13)
	b.Add(7, 7, 11)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	// result = sum ^ (pred & 0xffff) ^ (index << 24)
	b.Andi(13, 3, 0xffff)
	b.Xor(0, 7, 13)
	b.Slli(13, 4, 24)
	b.Xor(0, 0, 13)
	b.Halt()
	return b.MustBuild(), want, true
}

// adpcmDecRef mirrors the assembly decoder.
func adpcmDecRef(codes []byte) uint32 {
	var pred, index int32
	var sum uint32
	for _, cb := range codes {
		code := int32(cb)
		step := stepTable[index]
		diffq := step >> 3
		if code&4 != 0 {
			diffq += step
		}
		if code&2 != 0 {
			diffq += step >> 1
		}
		if code&1 != 0 {
			diffq += step >> 2
		}
		if code&8 != 0 {
			pred -= diffq
		} else {
			pred += diffq
		}
		if pred > 32767 {
			pred = 32767
		}
		if pred < -32768 {
			pred = -32768
		}
		index += indexTable[code]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		sum += uint32(pred)
	}
	return sum
}

func buildADPCMDec(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	samples := sampleWave(n, 0xADBC5)
	codes, _ := adpcmEncRef(samples)
	want := adpcmDecRef(codes)

	b := prog.NewBuilder("media.adpcm_dec")
	buf := b.Bytes(codes)
	stepW := make([]uint32, len(stepTable))
	for i, s := range stepTable {
		stepW[i] = uint32(s)
	}
	steps := b.Words(stepW...)
	idxW := make([]uint32, len(indexTable))
	for i, s := range indexTable {
		idxW[i] = uint32(s)
	}
	idxs := b.Words(idxW...)

	// r1 ptr, r2 count, r3 pred, r4 index, r5 steps, r6 idxs, r7 sum
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Li(5, steps)
	b.Li(6, idxs)
	b.Li(7, 0)
	b.Label("loop")
	b.Ldb(11, 1, 0) // code
	b.Slli(13, 4, 2)
	b.Add(13, 13, 5)
	b.Ldw(14, 13, 0) // step
	b.Srai(12, 14, 3)
	b.Andi(13, 11, 4)
	b.Beqz(13, "dq2")
	b.Add(12, 12, 14)
	b.Label("dq2")
	b.Srai(15, 14, 1)
	b.Andi(13, 11, 2)
	b.Beqz(13, "dq1")
	b.Add(12, 12, 15)
	b.Label("dq1")
	b.Srai(15, 14, 2)
	b.Andi(13, 11, 1)
	b.Beqz(13, "dq0")
	b.Add(12, 12, 15)
	b.Label("dq0")
	b.Andi(13, 11, 8)
	b.Beqz(13, "plus")
	b.Sub(3, 3, 12)
	b.Br("clamp")
	b.Label("plus")
	b.Add(3, 3, 12)
	b.Label("clamp")
	b.Li(13, 32767)
	b.CmpLt(15, 13, 3)
	b.Beqz(15, "cl2")
	b.Mov(3, 13)
	b.Label("cl2")
	b.Li(13, -32768)
	b.CmpLt(15, 3, 13)
	b.Beqz(15, "cl3")
	b.Mov(3, 13)
	b.Label("cl3")
	b.Slli(13, 11, 2)
	b.Add(13, 13, 6)
	b.Ldw(13, 13, 0)
	b.Add(4, 4, 13)
	b.Bgez(4, "ix1")
	b.Li(4, 0)
	b.Label("ix1")
	b.Li(13, 88)
	b.CmpLe(15, 4, 13)
	b.Bnez(15, "ix2")
	b.Li(4, 88)
	b.Label("ix2")
	b.Add(7, 7, 3) // sum += pred
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Mov(0, 7)
	b.Halt()
	return b.MustBuild(), want, true
}

// dctMatrix returns the 8x8 integer DCT coefficient matrix (scaled by 256).
func dctMatrix() [8][8]int32 {
	var c [8][8]int32
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			c[k][n] = int32(math.Round(256 * math.Cos(math.Pi*float64(k)*(2*float64(n)+1)/16)))
		}
	}
	return c
}

// dct8Ref applies the 8-point DCT to each block and checksums outputs.
func dct8Ref(in []int32) uint32 {
	c := dctMatrix()
	var sum uint32
	for b := 0; b+8 <= len(in); b += 8 {
		for k := 0; k < 8; k++ {
			var acc int32
			for n := 0; n < 8; n++ {
				acc += c[k][n] * in[b+n]
			}
			sum += uint32(acc >> 8)
		}
	}
	return sum
}

func buildDCT8(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	in := sampleWave(n, 0xDC7)
	want := dct8Ref(in)

	b := prog.NewBuilder("media.dct8")
	inW := make([]uint32, n)
	for i, s := range in {
		inW[i] = uint32(s)
	}
	buf := b.Words(inW...)
	c := dctMatrix()
	var cw []uint32
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			cw = append(cw, uint32(c[k][j]))
		}
	}
	coef := b.Words(cw...)

	// r1 block ptr, r2 blocks left, r3 k, r4 n, r5 acc, r6 coef row ptr,
	// r7 sum, r8/r9 temps.
	b.Li(1, buf)
	b.Li(2, int64(n/8))
	b.Li(7, 0)
	b.Label("block")
	b.Li(3, 0) // k
	b.Label("krow")
	b.Li(5, 0)      // acc
	b.Slli(6, 3, 5) // k*32 bytes per row
	b.Li(9, coef)
	b.Add(6, 6, 9)
	b.Li(4, 0) // n
	b.Label("ncol")
	b.Slli(8, 4, 2)
	b.Add(9, 8, 6)
	b.Ldw(9, 9, 0) // c[k][n]
	b.Add(8, 8, 1)
	b.Ldw(8, 8, 0) // in[b+n]
	b.Mul(9, 9, 8)
	b.Add(5, 5, 9)
	b.Addi(4, 4, 1)
	b.CmpLti(8, 4, 8)
	b.Bnez(8, "ncol")
	b.Srai(5, 5, 8)
	b.Add(7, 7, 5)
	b.Addi(3, 3, 1)
	b.CmpLti(8, 3, 8)
	b.Bnez(8, "krow")
	b.Addi(1, 1, 32)
	b.Subi(2, 2, 1)
	b.Bnez(2, "block")
	b.Mov(0, 7)
	b.Halt()
	return b.MustBuild(), want, true
}

// firRef applies an 8-tap FIR filter.
func firRef(in []int32, taps [8]int32) uint32 {
	var sum uint32
	for i := 0; i+8 <= len(in); i++ {
		var acc int32
		for k := 0; k < 8; k++ {
			acc += taps[k] * in[i+k]
		}
		sum += uint32(acc >> 8)
	}
	return sum
}

func buildFIR(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	in := sampleWave(n, 0xF14)
	taps := [8]int32{29, -43, 61, 212, 212, 61, -43, 29}
	want := firRef(in, taps)

	b := prog.NewBuilder("media.fir")
	inW := make([]uint32, n)
	for i, s := range in {
		inW[i] = uint32(s)
	}
	buf := b.Words(inW...)
	var tw []uint32
	for _, t := range taps {
		tw = append(tw, uint32(t))
	}
	tap := b.Words(tw...)

	b.Li(1, buf)
	b.Li(2, int64(n-7)) // output count
	b.Li(7, 0)          // sum
	b.Label("outer")
	b.Li(5, 0) // acc
	b.Li(4, 0) // k
	b.Li(6, tap)
	b.Label("inner")
	b.Slli(8, 4, 2)
	b.Add(9, 8, 6)
	b.Ldw(9, 9, 0)
	b.Add(8, 8, 1)
	b.Ldw(8, 8, 0)
	b.Mul(9, 9, 8)
	b.Add(5, 5, 9)
	b.Addi(4, 4, 1)
	b.CmpLti(8, 4, 8)
	b.Bnez(8, "inner")
	b.Srai(5, 5, 8)
	b.Add(7, 7, 5)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "outer")
	b.Mov(0, 7)
	b.Halt()
	return b.MustBuild(), want, true
}

// bitpackRef mirrors the assembly bit packer (uint32 semantics, residual
// bits dropped at flush).
func bitpackRef(vals []uint32) uint32 {
	var bitbuf, sum uint32
	var bitcnt uint32
	for _, v := range vals {
		nbits := v&15 + 1
		mask := uint32(1)<<nbits - 1
		bitbuf |= (v & mask) << bitcnt
		bitcnt += nbits
		if bitcnt >= 32 {
			sum = sum*31 + bitbuf
			bitbuf = 0
			bitcnt = 0
		}
	}
	return sum*31 + bitbuf
}

func buildBitpack(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	r := rng{s: 0xB17}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(r.next())
	}
	want := bitpackRef(vals)

	b := prog.NewBuilder("media.bitpack")
	buf := b.Words(vals...)
	// r1 ptr, r2 count, r3 bitbuf, r4 bitcnt, r5 sum
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Li(4, 0)
	b.Li(5, 0)
	b.Label("loop")
	b.Ldw(8, 1, 0)
	b.Andi(9, 8, 15)
	b.Addi(9, 9, 1) // nbits
	b.Li(10, 1)
	b.Sll(10, 10, 9)
	b.Subi(10, 10, 1) // mask
	b.And(10, 8, 10)
	b.Sll(10, 10, 4) // << bitcnt
	b.Or(3, 3, 10)
	b.Add(4, 4, 9)
	b.CmpLti(10, 4, 32)
	b.Bnez(10, "nofl")
	b.Li(10, 31)
	b.Mul(5, 5, 10)
	b.Add(5, 5, 3)
	b.Li(3, 0)
	b.Li(4, 0)
	b.Label("nofl")
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Li(10, 31)
	b.Mul(5, 5, 10)
	b.Add(5, 5, 3)
	b.Mov(0, 5)
	b.Halt()
	return b.MustBuild(), want, true
}

func init() {
	register(&Workload{Name: "media.adpcm_enc", Suite: "media", build: buildADPCMEnc})
	register(&Workload{Name: "media.adpcm_dec", Suite: "media", build: buildADPCMDec})
	register(&Workload{Name: "media.dct8", Suite: "media", build: buildDCT8})
	register(&Workload{Name: "media.fir", Suite: "media", build: buildFIR})
	register(&Workload{Name: "media.bitpack", Suite: "media", build: buildBitpack})
}
