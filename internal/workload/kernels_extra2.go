package workload

import (
	"repro/internal/prog"
)

// --- media: G.711 mu-law encoding ---

// ulawRef encodes 16-bit samples to 8-bit mu-law and checksums the codes.
// Classic G.711 bias-and-segment formulation.
func ulawRef(samples []int32) uint32 {
	const bias = 0x84
	var sum uint32
	for _, s := range samples {
		sign := uint32(0)
		if s < 0 {
			sign = 0x80
			s = -s
		}
		if s > 32635 {
			s = 32635
		}
		s += bias
		// Segment: position of the highest set bit above bit 7.
		seg := uint32(0)
		for t := s >> 8; t != 0 && seg < 7; t >>= 1 {
			seg++
		}
		low := uint32(s>>(seg+3)) & 0x0f
		code := ^(sign | seg<<4 | low) & 0xff
		sum = sum*131 + code
	}
	return sum
}

func buildUlaw(scale int) (*prog.Program, uint32, bool) {
	n := mediaSize(scale)
	samples := sampleWave(n, 0x0C711)
	want := ulawRef(samples)

	b := prog.NewBuilder("media.ulaw")
	inW := make([]uint32, n)
	for i, s := range samples {
		inW[i] = uint32(s)
	}
	buf := b.Words(inW...)
	// r1 ptr, r2 count, r3 sum; per sample: r4 s, r5 sign, r6 seg, r7/8 tmp
	b.Li(1, buf)
	b.Li(2, int64(n))
	b.Li(3, 0)
	b.Label("loop")
	b.Ldw(4, 1, 0)
	b.Li(5, 0)
	b.Bgez(4, "pos")
	b.Li(5, 0x80)
	b.Sub(4, 31, 4) // r31 is the zero register: r4 = -r4
	b.Label("pos")
	b.Li(7, 32635)
	b.CmpLt(8, 7, 4)
	b.Beqz(8, "noclip")
	b.Mov(4, 7)
	b.Label("noclip")
	b.Addi(4, 4, 0x84)
	// segment scan
	b.Li(6, 0)
	b.Srai(7, 4, 8)
	b.Label("seg")
	b.Beqz(7, "segdone")
	b.CmpLti(8, 6, 7)
	b.Beqz(8, "segdone")
	b.Addi(6, 6, 1)
	b.Srai(7, 7, 1)
	b.Br("seg")
	b.Label("segdone")
	// low = (s >> (seg+3)) & 0xf
	b.Addi(8, 6, 3)
	b.Sra(7, 4, 8)
	b.Andi(7, 7, 0x0f)
	// code = ~(sign | seg<<4 | low) & 0xff
	b.Slli(8, 6, 4)
	b.Or(8, 8, 5)
	b.Or(8, 8, 7)
	b.Xori(8, 8, 0xff)
	b.Andi(8, 8, 0xff)
	b.Li(7, 131)
	b.Mul(3, 3, 7)
	b.Add(3, 3, 8)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Mov(0, 3)
	b.Halt()
	return b.MustBuild(), want, true
}

// --- comm: COBS framing (consistent overhead byte stuffing) ---

// cobsRef encodes the buffer with COBS and checksums the framed output.
func cobsRef(data []byte) uint32 {
	var out []byte
	codeIdx := 0
	out = append(out, 0)
	code := byte(1)
	for _, c := range data {
		if c == 0 {
			out[codeIdx] = code
			codeIdx = len(out)
			out = append(out, 0)
			code = 1
			continue
		}
		out = append(out, c)
		code++
		if code == 0xff {
			out[codeIdx] = code
			codeIdx = len(out)
			out = append(out, 0)
			code = 1
		}
	}
	out[codeIdx] = code
	var sum uint32
	for i, c := range out {
		sum += uint32(c) * uint32(i+1)
	}
	return sum
}

func buildCOBS(scale int) (*prog.Program, uint32, bool) {
	n := commSize(scale)
	// Data with a meaningful zero density.
	r := rng{s: 0xC0B5}
	data := make([]byte, n)
	for i := range data {
		if r.chance(0.1) {
			data[i] = 0
		} else {
			data[i] = byte(r.next()%255) + 1
		}
	}
	want := cobsRef(data)

	b := prog.NewBuilder("comm.cobs")
	in := b.Bytes(data)
	out := b.Space(n + n/200 + 16)
	// r1 in ptr, r2 remaining, r3 out ptr, r4 codeIdx ptr, r5 code,
	// r6 byte, r7/8 temps
	b.Li(1, in)
	b.Li(2, int64(n))
	b.Li(3, out)
	b.Mov(4, 3)     // codeIdx = out[0]
	b.Addi(3, 3, 1) // out cursor past the code byte
	b.Li(5, 1)
	b.Label("loop")
	b.Ldb(6, 1, 0)
	b.Bnez(6, "nonzero")
	// zero byte: close the block
	b.Stb(5, 4, 0)
	b.Mov(4, 3)
	b.Addi(3, 3, 1)
	b.Li(5, 1)
	b.Br("next")
	b.Label("nonzero")
	b.Stb(6, 3, 0)
	b.Addi(3, 3, 1)
	b.Addi(5, 5, 1)
	b.CmpEqi(7, 5, 0xff)
	b.Beqz(7, "next")
	b.Stb(5, 4, 0)
	b.Mov(4, 3)
	b.Addi(3, 3, 1)
	b.Li(5, 1)
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Stb(5, 4, 0)
	// checksum: sum out[i] * (i+1) over the framed length
	b.Li(1, out)
	b.Sub(2, 3, 1) // framed length = cursor - base
	b.Li(4, 1)     // i+1
	b.Li(5, 0)
	b.Label("ck")
	b.Ldb(6, 1, 0)
	b.Mul(6, 6, 4)
	b.Add(5, 5, 6)
	b.Addi(1, 1, 1)
	b.Addi(4, 4, 1)
	b.Subi(2, 2, 1)
	b.Bnez(2, "ck")
	b.Mov(0, 5)
	b.Halt()
	return b.MustBuild(), want, true
}

func init() {
	register(&Workload{Name: "media.ulaw", Suite: "media", build: buildUlaw})
	register(&Workload{Name: "comm.cobs", Suite: "comm", build: buildCOBS})
}
