// Package emu is the functional (architectural) emulator. It executes a
// program to completion and produces the committed dynamic instruction
// trace that the timing pipeline replays: for every committed instruction,
// its static index, the static index of its successor, and its memory
// effective address if any.
//
// The emulator is oblivious to mini-graphs: aggregation is a
// microarchitectural transformation applied by the pipeline at fetch, so a
// single functional run serves every selector and machine configuration.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Rec is one committed dynamic instruction.
type Rec struct {
	Index int32  // static instruction index
	Next  int32  // static index of the next committed instruction, -1 after halt
	Addr  uint32 // memory effective address (loads/stores), else 0
	Taken bool   // for control transfers: whether the transfer was taken
}

// Result is the outcome of a functional run.
type Result struct {
	Trace     []Rec
	DynInstrs int64
	// Regs holds final architectural register values; by workload
	// convention RV (r0) carries a result checksum at halt.
	Regs [isa.NumRegs]uint32
	// Loads/Stores count dynamic memory operations.
	Loads, Stores int64
	// Branches and Taken count dynamic control transfers.
	Branches, Taken int64
}

// Checksum returns the workload result checksum (register RV at halt).
func (r *Result) Checksum() uint32 { return r.Regs[isa.RV] }

// Options configures a run.
type Options struct {
	// MaxInstrs bounds dynamic instructions; 0 means DefaultMaxInstrs.
	// Exceeding the bound is an error (runaway program).
	MaxInstrs int64
	// CollectTrace enables trace collection. When false, only counters and
	// final state are produced (used by quick functional checks).
	CollectTrace bool
}

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 64 << 20

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse byte-addressed memory of 4KB pages. The zero value is
// ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 if never written).
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// LoadWord returns the little-endian 32-bit word at addr.
func (m *Memory) LoadWord(addr uint32) uint32 {
	// Fast path: word within one page.
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// StoreWord stores a little-endian 32-bit word.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, true)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(base+uint32(i), b)
	}
}

// Run executes p to the halt instruction and returns the trace and final
// state. It returns an error for runaway executions, out-of-range control
// transfers, or falling off the end of the code.
func Run(p *prog.Program, opts Options) (*Result, error) {
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	var mem Memory
	mem.LoadImage(prog.DataBase, p.Data)

	res := &Result{}
	var regs [isa.NumRegs]uint32
	regs[isa.SP] = prog.StackTop

	read := func(r isa.Reg) uint32 {
		if r == isa.ZeroReg || r == isa.NoReg {
			return 0
		}
		return regs[r]
	}
	write := func(r isa.Reg, v uint32) {
		if r != isa.ZeroReg && r != isa.NoReg && r.Valid() {
			regs[r] = v
		}
	}

	if opts.CollectTrace {
		res.Trace = make([]Rec, 0, 1<<16)
	}

	pc := p.Entry
	n := len(p.Code)
	for {
		if res.DynInstrs >= maxInstrs {
			return nil, fmt.Errorf("emu: %s exceeded %d dynamic instructions", p.Name, maxInstrs)
		}
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("emu: %s: pc %d out of range", p.Name, pc)
		}
		in := p.Code[pc]
		next := pc + 1
		var addr uint32
		taken := false

		switch in.Op {
		case isa.OpNop:
		case isa.OpHalt:
			// Committed below, then the run ends.
		case isa.OpAdd:
			write(in.Rd, read(in.Rs1)+read(in.Rs2))
		case isa.OpSub:
			write(in.Rd, read(in.Rs1)-read(in.Rs2))
		case isa.OpAnd:
			write(in.Rd, read(in.Rs1)&read(in.Rs2))
		case isa.OpOr:
			write(in.Rd, read(in.Rs1)|read(in.Rs2))
		case isa.OpXor:
			write(in.Rd, read(in.Rs1)^read(in.Rs2))
		case isa.OpSll:
			write(in.Rd, read(in.Rs1)<<(read(in.Rs2)&31))
		case isa.OpSrl:
			write(in.Rd, read(in.Rs1)>>(read(in.Rs2)&31))
		case isa.OpSra:
			write(in.Rd, uint32(int32(read(in.Rs1))>>(read(in.Rs2)&31)))
		case isa.OpCmpEq:
			write(in.Rd, b2u(read(in.Rs1) == read(in.Rs2)))
		case isa.OpCmpLt:
			write(in.Rd, b2u(int32(read(in.Rs1)) < int32(read(in.Rs2))))
		case isa.OpCmpLe:
			write(in.Rd, b2u(int32(read(in.Rs1)) <= int32(read(in.Rs2))))
		case isa.OpCmpUlt:
			write(in.Rd, b2u(read(in.Rs1) < read(in.Rs2)))
		case isa.OpAddi:
			write(in.Rd, read(in.Rs1)+uint32(in.Imm))
		case isa.OpSubi:
			write(in.Rd, read(in.Rs1)-uint32(in.Imm))
		case isa.OpAndi:
			write(in.Rd, read(in.Rs1)&uint32(in.Imm))
		case isa.OpOri:
			write(in.Rd, read(in.Rs1)|uint32(in.Imm))
		case isa.OpXori:
			write(in.Rd, read(in.Rs1)^uint32(in.Imm))
		case isa.OpSlli:
			write(in.Rd, read(in.Rs1)<<(uint32(in.Imm)&31))
		case isa.OpSrli:
			write(in.Rd, read(in.Rs1)>>(uint32(in.Imm)&31))
		case isa.OpSrai:
			write(in.Rd, uint32(int32(read(in.Rs1))>>(uint32(in.Imm)&31)))
		case isa.OpCmpEqi:
			write(in.Rd, b2u(read(in.Rs1) == uint32(in.Imm)))
		case isa.OpCmpLti:
			write(in.Rd, b2u(int32(read(in.Rs1)) < int32(in.Imm)))
		case isa.OpCmpLei:
			write(in.Rd, b2u(int32(read(in.Rs1)) <= int32(in.Imm)))
		case isa.OpLda:
			write(in.Rd, uint32(in.Imm))
		case isa.OpMul:
			write(in.Rd, read(in.Rs1)*read(in.Rs2))
		case isa.OpDiv:
			d := int32(read(in.Rs2))
			if d == 0 {
				write(in.Rd, 0) // division by zero is defined as 0
			} else {
				write(in.Rd, uint32(int32(read(in.Rs1))/d))
			}
		case isa.OpRem:
			d := int32(read(in.Rs2))
			if d == 0 {
				write(in.Rd, 0)
			} else {
				write(in.Rd, uint32(int32(read(in.Rs1))%d))
			}
		case isa.OpLdw:
			addr = read(in.Rs1) + uint32(in.Imm)
			write(in.Rd, mem.LoadWord(addr))
			res.Loads++
		case isa.OpLdb:
			addr = read(in.Rs1) + uint32(in.Imm)
			write(in.Rd, uint32(mem.LoadByte(addr)))
			res.Loads++
		case isa.OpStw:
			addr = read(in.Rs1) + uint32(in.Imm)
			mem.StoreWord(addr, read(in.Rs2))
			res.Stores++
		case isa.OpStb:
			addr = read(in.Rs1) + uint32(in.Imm)
			mem.StoreByte(addr, byte(read(in.Rs2)))
			res.Stores++
		case isa.OpBr:
			next, taken = in.Targ, true
			res.Branches++
			res.Taken++
		case isa.OpBeqz, isa.OpBnez, isa.OpBltz, isa.OpBgez:
			v := int32(read(in.Rs1))
			switch in.Op {
			case isa.OpBeqz:
				taken = v == 0
			case isa.OpBnez:
				taken = v != 0
			case isa.OpBltz:
				taken = v < 0
			case isa.OpBgez:
				taken = v >= 0
			}
			if taken {
				next = in.Targ
				res.Taken++
			}
			res.Branches++
		case isa.OpJsr:
			write(in.Rd, prog.PCOf(pc+1))
			next, taken = in.Targ, true
			res.Branches++
			res.Taken++
		case isa.OpJsrI:
			t := read(in.Rs1)
			write(in.Rd, prog.PCOf(pc+1))
			next, taken = prog.IndexOf(t), true
			res.Branches++
			res.Taken++
		case isa.OpJmp, isa.OpRet:
			next, taken = prog.IndexOf(read(in.Rs1)), true
			res.Branches++
			res.Taken++
		default:
			return nil, fmt.Errorf("emu: %s: pc %d: unimplemented op %s", p.Name, pc, in.Op)
		}

		res.DynInstrs++
		if in.Op == isa.OpHalt {
			if opts.CollectTrace {
				res.Trace = append(res.Trace, Rec{Index: int32(pc), Next: -1})
			}
			break
		}
		if opts.CollectTrace {
			res.Trace = append(res.Trace, Rec{Index: int32(pc), Next: int32(next), Addr: addr, Taken: taken})
		}
		pc = next
	}
	res.Regs = regs
	return res, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
