// Package emu is the functional (architectural) emulator. It executes a
// program to completion and produces the committed dynamic instruction
// trace that the timing pipeline replays: for every committed instruction,
// its static index, the static index of its successor, and its memory
// effective address if any.
//
// The emulator is oblivious to mini-graphs: aggregation is a
// microarchitectural transformation applied by the pipeline at fetch, so a
// single functional run serves every selector and machine configuration.
package emu

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Rec is one committed dynamic instruction.
type Rec struct {
	Index int32  // static instruction index
	Next  int32  // static index of the next committed instruction, -1 after halt
	Addr  uint32 // memory effective address (loads/stores), else 0
	Taken bool   // for control transfers: whether the transfer was taken
}

// Result is the outcome of a functional run.
type Result struct {
	Trace     []Rec
	DynInstrs int64
	// Regs holds final architectural register values; by workload
	// convention RV (r0) carries a result checksum at halt.
	Regs [isa.NumRegs]uint32
	// Loads/Stores count dynamic memory operations.
	Loads, Stores int64
	// Branches and Taken count dynamic control transfers.
	Branches, Taken int64
}

// Checksum returns the workload result checksum (register RV at halt).
func (r *Result) Checksum() uint32 { return r.Regs[isa.RV] }

// Options configures a run.
type Options struct {
	// MaxInstrs bounds dynamic instructions; 0 means DefaultMaxInstrs.
	// Exceeding the bound is an error (runaway program).
	MaxInstrs int64
	// CollectTrace enables trace collection. When false, only counters and
	// final state are produced (used by quick functional checks).
	CollectTrace bool
}

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 64 << 20

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse byte-addressed memory of 4KB pages. The zero value is
// ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 if never written).
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// LoadWord returns the little-endian 32-bit word at addr.
func (m *Memory) LoadWord(addr uint32) uint32 {
	// Fast path: word within one page.
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(m.LoadByte(addr)) | uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 | uint32(m.LoadByte(addr+3))<<24
}

// StoreWord stores a little-endian 32-bit word.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, true)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(base+uint32(i), b)
	}
}

// Clone deep-copies the sparse page set. The clone and the original are
// fully independent.
func (m *Memory) Clone() *Memory {
	c := &Memory{}
	if m.pages != nil {
		c.pages = make(map[uint32]*[pageSize]byte, len(m.pages))
		for k, p := range m.pages {
			cp := new([pageSize]byte)
			*cp = *p
			c.pages[k] = cp
		}
	}
	return c
}

// Pages returns the number of touched memory pages (checkpoint footprint).
func (m *Memory) Pages() int { return len(m.pages) }

// Run executes p to the halt instruction and returns the trace and final
// state. It returns an error for runaway executions, out-of-range control
// transfers, or falling off the end of the code. It is the one-shot form of
// the resumable State (see state.go).
func Run(p *prog.Program, opts Options) (*Result, error) {
	s := NewState(p, opts)
	if err := s.RunToEnd(); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
