package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// refALU is an independent Go model of every ALU opcode's semantics,
// written directly from the ISA documentation (not from the emulator).
func refALU(op isa.Op, a, b uint32, imm int64) (uint32, bool) {
	i32 := func(x uint32) int32 { return int32(x) }
	switch op {
	case isa.OpAdd:
		return a + b, true
	case isa.OpSub:
		return a - b, true
	case isa.OpAnd:
		return a & b, true
	case isa.OpOr:
		return a | b, true
	case isa.OpXor:
		return a ^ b, true
	case isa.OpSll:
		return a << (b & 31), true
	case isa.OpSrl:
		return a >> (b & 31), true
	case isa.OpSra:
		return uint32(i32(a) >> (b & 31)), true
	case isa.OpCmpEq:
		if a == b {
			return 1, true
		}
		return 0, true
	case isa.OpCmpLt:
		if i32(a) < i32(b) {
			return 1, true
		}
		return 0, true
	case isa.OpCmpLe:
		if i32(a) <= i32(b) {
			return 1, true
		}
		return 0, true
	case isa.OpCmpUlt:
		if a < b {
			return 1, true
		}
		return 0, true
	case isa.OpMul:
		return a * b, true
	case isa.OpDiv:
		if i32(b) == 0 {
			return 0, true
		}
		return uint32(i32(a) / i32(b)), true
	case isa.OpRem:
		if i32(b) == 0 {
			return 0, true
		}
		return uint32(i32(a) % i32(b)), true
	case isa.OpAddi:
		return a + uint32(imm), true
	case isa.OpSubi:
		return a - uint32(imm), true
	case isa.OpAndi:
		return a & uint32(imm), true
	case isa.OpOri:
		return a | uint32(imm), true
	case isa.OpXori:
		return a ^ uint32(imm), true
	case isa.OpSlli:
		return a << (uint32(imm) & 31), true
	case isa.OpSrli:
		return a >> (uint32(imm) & 31), true
	case isa.OpSrai:
		return uint32(i32(a) >> (uint32(imm) & 31)), true
	case isa.OpCmpEqi:
		if a == uint32(imm) {
			return 1, true
		}
		return 0, true
	case isa.OpCmpLti:
		if i32(a) < int32(imm) {
			return 1, true
		}
		return 0, true
	case isa.OpCmpLei:
		if i32(a) <= int32(imm) {
			return 1, true
		}
		return 0, true
	case isa.OpLda:
		return uint32(imm), true
	}
	return 0, false
}

var aluOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll,
	isa.OpSrl, isa.OpSra, isa.OpCmpEq, isa.OpCmpLt, isa.OpCmpLe,
	isa.OpCmpUlt, isa.OpMul, isa.OpDiv, isa.OpRem,
	isa.OpAddi, isa.OpSubi, isa.OpAndi, isa.OpOri, isa.OpXori,
	isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpCmpEqi, isa.OpCmpLti,
	isa.OpCmpLei, isa.OpLda,
}

// runOne executes a single op with the given inputs on the emulator.
func runOne(t testing.TB, op isa.Op, a, b uint32, imm int64) uint32 {
	t.Helper()
	bl := prog.NewBuilder("one")
	bl.Li(1, int64(a))
	bl.Li(2, int64(b))
	in := isa.Instr{Op: op, Rd: 0, Rs1: 1, Rs2: 2}
	switch {
	case op == isa.OpLda:
		in.Rs1, in.Rs2, in.Imm = isa.NoReg, isa.NoReg, imm
	case isImmOp(op):
		in.Rs2, in.Imm = isa.NoReg, imm
	}
	bl.Emit(in)
	bl.Halt()
	res, err := Run(bl.MustBuild(), Options{})
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return res.Checksum()
}

func isImmOp(op isa.Op) bool {
	switch op {
	case isa.OpAddi, isa.OpSubi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpCmpEqi, isa.OpCmpLti, isa.OpCmpLei:
		return true
	}
	return false
}

// TestDifferentialALU compares every ALU opcode against the independent
// reference on structured corner cases.
func TestDifferentialALU(t *testing.T) {
	corners := []uint32{0, 1, 2, 31, 32, 0x7fffffff, 0x80000000, 0xffffffff, 12345}
	for _, op := range aluOps {
		for _, a := range corners {
			for _, b := range corners {
				imm := int64(int32(b)) // reuse b as the immediate for imm forms
				want, ok := refALU(op, a, b, imm)
				if !ok {
					t.Fatalf("reference missing op %s", op)
				}
				got := runOne(t, op, a, b, imm)
				if got != want {
					t.Fatalf("%s(a=%#x, b=%#x, imm=%d) = %#x, want %#x", op, a, b, imm, got, want)
				}
			}
		}
	}
}

// Property: random operands agree with the reference for every opcode.
func TestDifferentialALUProperty(t *testing.T) {
	f := func(opSel uint8, a, b uint32) bool {
		op := aluOps[int(opSel)%len(aluOps)]
		imm := int64(int32(b))
		want, _ := refALU(op, a, b, imm)
		return runOne(t, op, a, b, imm) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
