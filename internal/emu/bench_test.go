package emu

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkEmulator measures functional-emulation speed on a real kernel.
func BenchmarkEmulator(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.dct8")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := Run(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkEmulatorWithTrace includes trace collection (the experiment
// pipeline's configuration).
func BenchmarkEmulatorWithTrace(b *testing.B) {
	b.ReportAllocs()
	w := workload.Find("media.dct8")
	p, _, _, err := w.Build("small")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, Options{CollectTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemory measures the sparse-memory word path.
func BenchmarkMemory(b *testing.B) {
	b.ReportAllocs()
	var m Memory
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i*4) & 0xFFFFF
		m.StoreWord(addr, uint32(i))
		if m.LoadWord(addr) != uint32(i) {
			b.Fatal("mismatch")
		}
	}
}
