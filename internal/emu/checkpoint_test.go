package emu

import (
	"testing"

	"repro/internal/workload"
)

// TestCheckpointRoundTrip: snapshot mid-run, resume, and require the final
// Result and the trace suffix to be byte-identical to the uninterrupted run.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, name := range []string{"comm.crc32", "media.dct8"} {
		t.Run(name, func(t *testing.T) {
			w := workload.Find(name)
			p, _, _, err := w.Build("small")
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			full, err := Run(p, Options{CollectTrace: true})
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			mid := full.DynInstrs / 2

			s := NewState(p, Options{})
			if err := s.RunTo(mid); err != nil {
				t.Fatalf("RunTo(%d): %v", mid, err)
			}
			if s.DynInstrs() != mid {
				t.Fatalf("RunTo stopped at %d, want %d", s.DynInstrs(), mid)
			}
			ck := s.Checkpoint()
			if ck.DynInstrs != mid {
				t.Fatalf("checkpoint DynInstrs = %d, want %d", ck.DynInstrs, mid)
			}

			r := Resume(p, ck, Options{CollectTrace: true})
			if err := r.RunToEnd(); err != nil {
				t.Fatalf("resume run: %v", err)
			}
			res := r.Result()
			if res.DynInstrs != full.DynInstrs {
				t.Errorf("DynInstrs = %d, want %d", res.DynInstrs, full.DynInstrs)
			}
			if res.Regs != full.Regs {
				t.Errorf("final registers differ after resume")
			}
			if res.Loads != full.Loads || res.Stores != full.Stores ||
				res.Branches != full.Branches || res.Taken != full.Taken {
				t.Errorf("counters differ: got %d/%d/%d/%d want %d/%d/%d/%d",
					res.Loads, res.Stores, res.Branches, res.Taken,
					full.Loads, full.Stores, full.Branches, full.Taken)
			}
			suffix := full.Trace[mid:]
			if len(res.Trace) != len(suffix) {
				t.Fatalf("trace suffix length = %d, want %d", len(res.Trace), len(suffix))
			}
			for i := range suffix {
				if res.Trace[i] != suffix[i] {
					t.Fatalf("trace suffix diverges at %d: got %+v want %+v", i, res.Trace[i], suffix[i])
				}
			}
		})
	}
}

// TestCheckpointImmutable: resuming twice from one checkpoint must give
// identical executions, and running the original State on after snapshotting
// must not disturb the checkpoint.
func TestCheckpointImmutable(t *testing.T) {
	w := workload.Find("comm.crc32")
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s := NewState(p, Options{})
	if err := s.RunTo(1000); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	ck := s.Checkpoint()

	// Mutate the original state past the snapshot.
	if err := s.RunToEnd(); err != nil {
		t.Fatalf("RunToEnd: %v", err)
	}

	finish := func() *Result {
		r := Resume(p, ck, Options{})
		if err := r.RunToEnd(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		return r.Result()
	}
	a, b := finish(), finish()
	if a.Regs != b.Regs || a.DynInstrs != b.DynInstrs {
		t.Fatalf("two resumes from one checkpoint diverged")
	}
	if a.Regs != s.Result().Regs {
		t.Fatalf("resumed final registers differ from uninterrupted run")
	}
}

// TestStateStreamedTraceMatchesFull: collecting the trace in windows via
// SetCollect/TakeTrace must reproduce the full trace exactly.
func TestStateStreamedTraceMatchesFull(t *testing.T) {
	w := workload.Find("comm.crc32")
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	full, err := Run(p, Options{CollectTrace: true})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}

	s := NewState(p, Options{CollectTrace: true})
	const chunk = 1777 // deliberately unaligned window size
	var streamed []Rec
	for !s.Halted() {
		if err := s.RunTo(s.DynInstrs() + chunk); err != nil {
			t.Fatalf("RunTo: %v", err)
		}
		streamed = append(streamed, s.TakeTrace()...)
	}
	if len(streamed) != len(full.Trace) {
		t.Fatalf("streamed %d records, want %d", len(streamed), len(full.Trace))
	}
	for i := range streamed {
		if streamed[i] != full.Trace[i] {
			t.Fatalf("streamed trace diverges at %d", i)
		}
	}
	if s.Result().Regs != full.Regs {
		t.Fatalf("streamed final registers differ")
	}
}

// TestSetCollectTogglesMidRun: records are only captured while collection is
// on, and counters are unaffected by toggling.
func TestSetCollectTogglesMidRun(t *testing.T) {
	w := workload.Find("comm.crc32")
	p, _, _, err := w.Build("small")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	full, err := Run(p, Options{CollectTrace: true})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}

	s := NewState(p, Options{}) // collection off
	if err := s.RunTo(500); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	s.SetCollect(true)
	if err := s.RunTo(900); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	s.SetCollect(false)
	got := s.TakeTrace()
	want := full.Trace[500:900]
	if len(got) != len(want) {
		t.Fatalf("collected %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window record %d differs", i)
		}
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatalf("RunToEnd: %v", err)
	}
	if tr := s.TakeTrace(); len(tr) != 0 {
		t.Fatalf("collected %d records with collection off", len(tr))
	}
	if s.DynInstrs() != full.DynInstrs {
		t.Fatalf("DynInstrs = %d, want %d", s.DynInstrs(), full.DynInstrs)
	}
}
