package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

func run(t *testing.T, p *prog.Program) *Result {
	t.Helper()
	res, err := Run(p, Options{CollectTrace: true})
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name, err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	b := prog.NewBuilder("arith")
	b.Li(1, 7)
	b.Li(2, 5)
	b.Add(3, 1, 2) // 12
	b.Sub(4, 1, 2) // 2
	b.Mul(5, 1, 2) // 35
	b.Div(6, 5, 1) // 5
	b.Rem(7, 5, 2) // 0
	b.Xor(8, 1, 2) // 2
	b.Add(0, 3, 5) // rv = 47
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 47 {
		t.Errorf("checksum = %d, want 47", res.Checksum())
	}
	if res.Regs[4] != 2 || res.Regs[6] != 5 || res.Regs[7] != 0 {
		t.Errorf("regs = r4:%d r6:%d r7:%d", res.Regs[4], res.Regs[6], res.Regs[7])
	}
}

func TestSignedOps(t *testing.T) {
	b := prog.NewBuilder("signed")
	b.Li(1, -8&0xffffffff) // r1 = -8
	b.Li(2, 3)
	b.Srai(3, 1, 1)   // -4
	b.Srli(4, 1, 28)  // 0xf
	b.CmpLt(5, 1, 2)  // 1 (signed -8 < 3)
	b.CmpUlt(6, 1, 2) // 0 (unsigned huge > 3)
	b.Div(7, 1, 2)    // -2 (Go truncation)
	b.Rem(8, 1, 2)    // -2
	b.Halt()
	res := run(t, b.MustBuild())
	if int32(res.Regs[3]) != -4 {
		t.Errorf("srai = %d, want -4", int32(res.Regs[3]))
	}
	if res.Regs[4] != 0xf {
		t.Errorf("srli = %#x, want 0xf", res.Regs[4])
	}
	if res.Regs[5] != 1 || res.Regs[6] != 0 {
		t.Errorf("cmplt=%d cmpult=%d, want 1,0", res.Regs[5], res.Regs[6])
	}
	if int32(res.Regs[7]) != -2 || int32(res.Regs[8]) != -2 {
		t.Errorf("div=%d rem=%d, want -2,-2", int32(res.Regs[7]), int32(res.Regs[8]))
	}
}

func TestDivideByZeroDefined(t *testing.T) {
	b := prog.NewBuilder("divzero")
	b.Li(1, 42)
	b.Li(2, 0)
	b.Div(3, 1, 2)
	b.Rem(4, 1, 2)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Regs[3] != 0 || res.Regs[4] != 0 {
		t.Errorf("div/rem by zero = %d,%d, want 0,0", res.Regs[3], res.Regs[4])
	}
}

func TestLoop(t *testing.T) {
	// sum 1..100 = 5050
	b := prog.NewBuilder("sum")
	b.Li(1, 100)
	b.Li(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 5050 {
		t.Errorf("sum = %d, want 5050", res.Checksum())
	}
	// 100 iterations, bnez taken 99 times.
	if res.Branches != 100 || res.Taken != 99 {
		t.Errorf("branches=%d taken=%d, want 100,99", res.Branches, res.Taken)
	}
}

func TestMemory(t *testing.T) {
	b := prog.NewBuilder("mem")
	arr := b.Words(10, 20, 30, 40)
	b.Li(1, arr)
	b.Ldw(2, 1, 0)
	b.Ldw(3, 1, 4)
	b.Ldw(4, 1, 12)
	b.Add(5, 2, 3)
	b.Add(5, 5, 4) // 70
	b.Stw(5, 1, 16)
	b.Ldw(0, 1, 16)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 70 {
		t.Errorf("checksum = %d, want 70", res.Checksum())
	}
	if res.Loads != 4 || res.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 4,1", res.Loads, res.Stores)
	}
}

func TestBytes(t *testing.T) {
	b := prog.NewBuilder("bytes")
	s := b.Bytes([]byte{0xff, 0x01})
	b.Li(1, s)
	b.Ldb(2, 1, 0) // 255 zero-extended
	b.Ldb(3, 1, 1) // 1
	b.Li(4, 0x1234)
	b.Stb(4, 1, 2) // stores 0x34
	b.Ldb(5, 1, 2)
	b.Add(0, 2, 3)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 256 {
		t.Errorf("checksum = %d, want 256", res.Checksum())
	}
	if res.Regs[5] != 0x34 {
		t.Errorf("stb/ldb = %#x, want 0x34", res.Regs[5])
	}
}

func TestCallReturn(t *testing.T) {
	b := prog.NewBuilder("call")
	b.Li(1, 6)
	b.Jsr("double")
	b.Mov(2, 0)
	b.Jsr("double") // doubles r1 again? double uses r1 input, rv output
	b.Add(0, 0, 2)
	b.Halt()
	b.Label("double")
	b.Add(0, 1, 1)
	b.Mov(1, 0)
	b.Ret()
	res := run(t, b.MustBuild())
	// First call: rv=12, r1=12, r2=12. Second: rv=24. Total 36.
	if res.Checksum() != 36 {
		t.Errorf("checksum = %d, want 36", res.Checksum())
	}
}

func TestIndirectJump(t *testing.T) {
	b := prog.NewBuilder("ijmp")
	b.Li(1, 0)
	tgt := b.Pos() + 2 // the instruction after jmpr
	b.Li(2, int64(prog.PCOf(tgt+1)))
	b.JmpR(2)
	b.Li(1, 99) // skipped
	b.Mov(0, 1)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 0 {
		t.Errorf("checksum = %d, want 0 (li skipped)", res.Checksum())
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := prog.NewBuilder("zero")
	b.Li(isa.ZeroReg, 77)
	b.Add(isa.ZeroReg, isa.ZeroReg, isa.ZeroReg)
	b.Mov(0, isa.ZeroReg)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 0 {
		t.Errorf("zero register was written: rv = %d", res.Checksum())
	}
}

func TestTraceShape(t *testing.T) {
	b := prog.NewBuilder("trace")
	b.Li(1, 2) // 0
	b.Label("loop")
	b.Subi(1, 1, 1)   // 1
	b.Bnez(1, "loop") // 2
	b.Halt()          // 3
	res := run(t, b.MustBuild())
	want := []struct {
		index, next int32
		taken       bool
	}{
		{0, 1, false},
		{1, 2, false},
		{2, 1, true}, // taken back edge
		{1, 2, false},
		{2, 3, false}, // not taken
		{3, -1, false},
	}
	if len(res.Trace) != len(want) {
		t.Fatalf("trace len = %d, want %d", len(res.Trace), len(want))
	}
	for i, w := range want {
		r := res.Trace[i]
		if r.Index != w.index || r.Next != w.next || r.Taken != w.taken {
			t.Errorf("trace[%d] = %+v, want %+v", i, r, w)
		}
	}
	if res.DynInstrs != int64(len(want)) {
		t.Errorf("DynInstrs = %d, want %d", res.DynInstrs, len(want))
	}
}

func TestRunawayBounded(t *testing.T) {
	b := prog.NewBuilder("forever")
	b.Label("x")
	b.Br("x")
	b.Halt()
	if _, err := Run(b.MustBuild(), Options{MaxInstrs: 1000}); err == nil {
		t.Fatal("runaway program should error")
	}
}

func TestStackUse(t *testing.T) {
	b := prog.NewBuilder("stack")
	b.Subi(isa.SP, isa.SP, 16)
	b.Li(1, 123)
	b.Stw(1, isa.SP, 0)
	b.Li(1, 0)
	b.Ldw(0, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Halt()
	res := run(t, b.MustBuild())
	if res.Checksum() != 123 {
		t.Errorf("stack round-trip = %d, want 123", res.Checksum())
	}
	if res.Regs[isa.SP] != prog.StackTop {
		t.Errorf("sp = %#x, want restored %#x", res.Regs[isa.SP], prog.StackTop)
	}
}

func TestMemoryWordByteConsistency(t *testing.T) {
	var m Memory
	m.StoreWord(100, 0x11223344)
	if m.LoadByte(100) != 0x44 || m.LoadByte(103) != 0x11 {
		t.Error("little-endian layout broken")
	}
	// Cross-page word (page size 4096).
	m.StoreWord(4094, 0xaabbccdd)
	if m.LoadWord(4094) != 0xaabbccdd {
		t.Errorf("cross-page word = %#x", m.LoadWord(4094))
	}
}

// Property: word write then read round-trips at any address, including
// page-straddling ones.
func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(addr uint32, v uint32) bool {
		addr %= 1 << 20
		var m Memory
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the trace is well-formed — each Rec.Next equals the following
// Rec.Index, and the last record's Next is -1.
func TestTraceLinkageProperty(t *testing.T) {
	f := func(n uint8, seed uint8) bool {
		iters := int64(n%50) + 1
		b := prog.NewBuilder("p")
		b.Li(1, iters)
		b.Li(2, int64(seed))
		b.Label("loop")
		b.Add(2, 2, 1)
		b.Xori(2, 2, 0x5a)
		b.Subi(1, 1, 1)
		b.Bnez(1, "loop")
		b.Mov(0, 2)
		b.Halt()
		res, err := Run(b.MustBuild(), Options{CollectTrace: true})
		if err != nil {
			return false
		}
		for i := 0; i < len(res.Trace)-1; i++ {
			if res.Trace[i].Next != res.Trace[i+1].Index {
				return false
			}
		}
		return res.Trace[len(res.Trace)-1].Next == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: emulation is deterministic.
func TestDeterminismProperty(t *testing.T) {
	b := prog.NewBuilder("det")
	arr := b.Space(64)
	b.Li(1, arr)
	b.Li(2, 16)
	b.Label("loop")
	b.Mul(3, 2, 2)
	b.Stw(3, 1, 0)
	b.Ldw(4, 1, 0)
	b.Add(0, 0, 4)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Halt()
	p := b.MustBuild()
	r1, err1 := Run(p, Options{CollectTrace: true})
	r2, err2 := Run(p, Options{CollectTrace: true})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Checksum() != r2.Checksum() || r1.DynInstrs != r2.DynInstrs {
		t.Error("emulation is not deterministic")
	}
}
