package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// State is a resumable functional execution: the same interpreter Run uses,
// but stoppable at any committed-instruction boundary, checkpointable, and
// restartable from a checkpoint. A State created with NewState and driven to
// halt produces results byte-identical to Run.
type State struct {
	p         *prog.Program
	mem       Memory
	regs      [isa.NumRegs]uint32
	pc        int
	halted    bool
	maxInstrs int64
	collect   bool
	trace     []Rec

	dynInstrs, loads, stores, branches, taken int64
}

// NewState prepares a fresh execution of p. Nothing runs until RunTo or
// RunToEnd is called.
func NewState(p *prog.Program, opts Options) *State {
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	s := &State{p: p, pc: p.Entry, maxInstrs: maxInstrs, collect: opts.CollectTrace}
	s.mem.LoadImage(prog.DataBase, p.Data)
	s.regs[isa.SP] = prog.StackTop
	if s.collect {
		s.trace = make([]Rec, 0, 1<<16)
	}
	return s
}

// Checkpoint is a snapshot of architectural state mid-run: registers, the
// program counter, the sparse set of touched memory pages, and the dynamic
// instruction/operation counts. A checkpoint is immutable once taken — Resume
// copies it, so one checkpoint can seed any number of independent executions.
type Checkpoint struct {
	PC     int
	Regs   [isa.NumRegs]uint32
	Halted bool
	Mem    *Memory

	DynInstrs, Loads, Stores, Branches, Taken int64
}

// Checkpoint snapshots the current architectural state. The memory image is
// deep-copied; the snapshot stays valid as the State runs on.
func (s *State) Checkpoint() *Checkpoint {
	return &Checkpoint{
		PC:        s.pc,
		Regs:      s.regs,
		Halted:    s.halted,
		Mem:       s.mem.Clone(),
		DynInstrs: s.dynInstrs,
		Loads:     s.loads,
		Stores:    s.stores,
		Branches:  s.branches,
		Taken:     s.taken,
	}
}

// Resume builds a State that continues execution from ck. The checkpoint's
// memory is deep-copied, so ck remains reusable and concurrent resumes are
// independent. opts controls trace collection and the instruction bound for
// the resumed execution (the bound applies to the cumulative DynInstrs count,
// matching an uninterrupted run).
func Resume(p *prog.Program, ck *Checkpoint, opts Options) *State {
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}
	s := &State{
		p:         p,
		pc:        ck.PC,
		regs:      ck.Regs,
		halted:    ck.Halted,
		maxInstrs: maxInstrs,
		collect:   opts.CollectTrace,
		dynInstrs: ck.DynInstrs,
		loads:     ck.Loads,
		stores:    ck.Stores,
		branches:  ck.Branches,
		taken:     ck.Taken,
	}
	s.mem = *ck.Mem.Clone()
	if s.collect {
		s.trace = make([]Rec, 0, 1<<12)
	}
	return s
}

// Halted reports whether the program has committed its halt instruction.
func (s *State) Halted() bool { return s.halted }

// DynInstrs returns the cumulative committed-instruction count.
func (s *State) DynInstrs() int64 { return s.dynInstrs }

// PC returns the static index of the next instruction to execute.
func (s *State) PC() int { return s.pc }

// SetCollect switches trace collection on or off at the current instruction
// boundary. Turning it on starts recording from the next committed
// instruction.
func (s *State) SetCollect(on bool) {
	if on && !s.collect && s.trace == nil {
		s.trace = make([]Rec, 0, 1<<12)
	}
	s.collect = on
}

// TakeTrace hands over the records collected since the last TakeTrace (or
// since collection was enabled) and starts a fresh buffer. The caller owns
// the returned slice.
func (s *State) TakeTrace() []Rec {
	tr := s.trace
	if s.collect {
		s.trace = make([]Rec, 0, 1<<12)
	} else {
		s.trace = nil
	}
	return tr
}

// Result assembles the functional result of the execution so far. After the
// State has halted this matches Run's Result exactly (the Trace holds
// whatever collection produced and was not taken).
func (s *State) Result() *Result {
	return &Result{
		Trace:     s.trace,
		DynInstrs: s.dynInstrs,
		Regs:      s.regs,
		Loads:     s.loads,
		Stores:    s.stores,
		Branches:  s.branches,
		Taken:     s.taken,
	}
}

// RunTo executes until the cumulative committed-instruction count reaches n
// or the program halts, whichever comes first. It is a no-op if already
// halted or past n.
func (s *State) RunTo(n int64) error { return s.run(n) }

// RunToEnd executes until halt (or until the instruction bound is exceeded,
// which is an error, as in Run).
func (s *State) RunToEnd() error { return s.run(math.MaxInt64) }

// run is the interpreter loop. State is staged into locals for the hot loop
// and written back on every exit path, so the State is consistent at any
// instruction boundary.
func (s *State) run(target int64) error {
	if s.halted {
		return nil
	}
	p := s.p
	code := p.Code
	n := len(code)
	pc := s.pc
	regs := s.regs
	mem := &s.mem
	collect := s.collect
	trace := s.trace
	dyn, loads, stores, branches, takenCnt := s.dynInstrs, s.loads, s.stores, s.branches, s.taken
	halted := false
	var err error

	read := func(r isa.Reg) uint32 {
		if r == isa.ZeroReg || r == isa.NoReg {
			return 0
		}
		return regs[r]
	}
	write := func(r isa.Reg, v uint32) {
		if r != isa.ZeroReg && r != isa.NoReg && r.Valid() {
			regs[r] = v
		}
	}

loop:
	for dyn < target {
		if dyn >= s.maxInstrs {
			err = fmt.Errorf("emu: %s exceeded %d dynamic instructions", p.Name, s.maxInstrs)
			break
		}
		if pc < 0 || pc >= n {
			err = fmt.Errorf("emu: %s: pc %d out of range", p.Name, pc)
			break
		}
		in := code[pc]
		next := pc + 1
		var addr uint32
		taken := false

		switch in.Op {
		case isa.OpNop:
		case isa.OpHalt:
			// Committed below, then the run ends.
		case isa.OpAdd:
			write(in.Rd, read(in.Rs1)+read(in.Rs2))
		case isa.OpSub:
			write(in.Rd, read(in.Rs1)-read(in.Rs2))
		case isa.OpAnd:
			write(in.Rd, read(in.Rs1)&read(in.Rs2))
		case isa.OpOr:
			write(in.Rd, read(in.Rs1)|read(in.Rs2))
		case isa.OpXor:
			write(in.Rd, read(in.Rs1)^read(in.Rs2))
		case isa.OpSll:
			write(in.Rd, read(in.Rs1)<<(read(in.Rs2)&31))
		case isa.OpSrl:
			write(in.Rd, read(in.Rs1)>>(read(in.Rs2)&31))
		case isa.OpSra:
			write(in.Rd, uint32(int32(read(in.Rs1))>>(read(in.Rs2)&31)))
		case isa.OpCmpEq:
			write(in.Rd, b2u(read(in.Rs1) == read(in.Rs2)))
		case isa.OpCmpLt:
			write(in.Rd, b2u(int32(read(in.Rs1)) < int32(read(in.Rs2))))
		case isa.OpCmpLe:
			write(in.Rd, b2u(int32(read(in.Rs1)) <= int32(read(in.Rs2))))
		case isa.OpCmpUlt:
			write(in.Rd, b2u(read(in.Rs1) < read(in.Rs2)))
		case isa.OpAddi:
			write(in.Rd, read(in.Rs1)+uint32(in.Imm))
		case isa.OpSubi:
			write(in.Rd, read(in.Rs1)-uint32(in.Imm))
		case isa.OpAndi:
			write(in.Rd, read(in.Rs1)&uint32(in.Imm))
		case isa.OpOri:
			write(in.Rd, read(in.Rs1)|uint32(in.Imm))
		case isa.OpXori:
			write(in.Rd, read(in.Rs1)^uint32(in.Imm))
		case isa.OpSlli:
			write(in.Rd, read(in.Rs1)<<(uint32(in.Imm)&31))
		case isa.OpSrli:
			write(in.Rd, read(in.Rs1)>>(uint32(in.Imm)&31))
		case isa.OpSrai:
			write(in.Rd, uint32(int32(read(in.Rs1))>>(uint32(in.Imm)&31)))
		case isa.OpCmpEqi:
			write(in.Rd, b2u(read(in.Rs1) == uint32(in.Imm)))
		case isa.OpCmpLti:
			write(in.Rd, b2u(int32(read(in.Rs1)) < int32(in.Imm)))
		case isa.OpCmpLei:
			write(in.Rd, b2u(int32(read(in.Rs1)) <= int32(in.Imm)))
		case isa.OpLda:
			write(in.Rd, uint32(in.Imm))
		case isa.OpMul:
			write(in.Rd, read(in.Rs1)*read(in.Rs2))
		case isa.OpDiv:
			d := int32(read(in.Rs2))
			if d == 0 {
				write(in.Rd, 0) // division by zero is defined as 0
			} else {
				write(in.Rd, uint32(int32(read(in.Rs1))/d))
			}
		case isa.OpRem:
			d := int32(read(in.Rs2))
			if d == 0 {
				write(in.Rd, 0)
			} else {
				write(in.Rd, uint32(int32(read(in.Rs1))%d))
			}
		case isa.OpLdw:
			addr = read(in.Rs1) + uint32(in.Imm)
			write(in.Rd, mem.LoadWord(addr))
			loads++
		case isa.OpLdb:
			addr = read(in.Rs1) + uint32(in.Imm)
			write(in.Rd, uint32(mem.LoadByte(addr)))
			loads++
		case isa.OpStw:
			addr = read(in.Rs1) + uint32(in.Imm)
			mem.StoreWord(addr, read(in.Rs2))
			stores++
		case isa.OpStb:
			addr = read(in.Rs1) + uint32(in.Imm)
			mem.StoreByte(addr, byte(read(in.Rs2)))
			stores++
		case isa.OpBr:
			next, taken = in.Targ, true
			branches++
			takenCnt++
		case isa.OpBeqz, isa.OpBnez, isa.OpBltz, isa.OpBgez:
			v := int32(read(in.Rs1))
			switch in.Op {
			case isa.OpBeqz:
				taken = v == 0
			case isa.OpBnez:
				taken = v != 0
			case isa.OpBltz:
				taken = v < 0
			case isa.OpBgez:
				taken = v >= 0
			}
			if taken {
				next = in.Targ
				takenCnt++
			}
			branches++
		case isa.OpJsr:
			write(in.Rd, prog.PCOf(pc+1))
			next, taken = in.Targ, true
			branches++
			takenCnt++
		case isa.OpJsrI:
			t := read(in.Rs1)
			write(in.Rd, prog.PCOf(pc+1))
			next, taken = prog.IndexOf(t), true
			branches++
			takenCnt++
		case isa.OpJmp, isa.OpRet:
			next, taken = prog.IndexOf(read(in.Rs1)), true
			branches++
			takenCnt++
		default:
			err = fmt.Errorf("emu: %s: pc %d: unimplemented op %s", p.Name, pc, in.Op)
			break loop
		}

		dyn++
		if in.Op == isa.OpHalt {
			if collect {
				trace = append(trace, Rec{Index: int32(pc), Next: -1})
			}
			halted = true
			break
		}
		if collect {
			trace = append(trace, Rec{Index: int32(pc), Next: int32(next), Addr: addr, Taken: taken})
		}
		pc = next
	}

	s.pc = pc
	s.regs = regs
	s.trace = trace
	s.dynInstrs, s.loads, s.stores, s.branches, s.taken = dyn, loads, stores, branches, takenCnt
	s.halted = halted
	return err
}
