package simcache

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestDoCtxOutcomes pins the three lookup outcomes: a cold key is a Miss,
// a completed key is a Hit, and a disabled cache always reports Miss.
func TestDoCtxOutcomes(t *testing.T) {
	c := Named[string, int]("outcomes")
	compute := func(context.Context) (int, error) { return 42, nil }

	v, outcome, err := c.DoCtx(context.Background(), "k", compute)
	if err != nil || v != 42 || outcome != Miss {
		t.Errorf("cold lookup: v=%d outcome=%q err=%v, want 42/%q/nil", v, outcome, err, Miss)
	}
	v, outcome, err = c.DoCtx(context.Background(), "k", compute)
	if err != nil || v != 42 || outcome != Hit {
		t.Errorf("warm lookup: v=%d outcome=%q err=%v, want 42/%q/nil", v, outcome, err, Hit)
	}

	c.SetDisabled(true)
	_, outcome, _ = c.DoCtx(context.Background(), "k", compute)
	if outcome != Miss {
		t.Errorf("disabled lookup outcome %q, want %q", outcome, Miss)
	}
	c.SetDisabled(false)
	_, outcome, _ = c.DoCtx(context.Background(), "k", compute)
	if outcome != Hit {
		t.Errorf("re-enabled lookup outcome %q, want %q", outcome, Hit)
	}
}

// TestDoCtxShared forces the singleflight path: a second caller arriving
// while the computation is in flight must report Shared and get the same
// value without recomputing.
func TestDoCtxShared(t *testing.T) {
	c := Named[string, int]("shared")
	entered := make(chan struct{})
	release := make(chan struct{})
	computes := 0
	compute := func(context.Context) (int, error) {
		computes++
		close(entered)
		<-release
		return 7, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var missOutcome string
	go func() {
		defer wg.Done()
		_, missOutcome, _ = c.DoCtx(context.Background(), "k", compute)
	}()
	<-entered // first caller is inside compute
	wg.Add(1)
	var sharedV int
	var sharedOutcome string
	go func() {
		defer wg.Done()
		sharedV, sharedOutcome, _ = c.DoCtx(context.Background(), "k",
			func(context.Context) (int, error) { t.Error("shared caller recomputed"); return 0, nil })
	}()
	// Wait until the second caller has joined the flight before releasing.
	for c.Stats().Shared == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	if missOutcome != Miss || sharedOutcome != Shared || sharedV != 7 {
		t.Errorf("outcomes miss=%q shared=%q v=%d, want %q/%q/7", missOutcome, sharedOutcome, sharedV, Miss, Shared)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != 1 || s.Hits != 0 {
		t.Errorf("counters %+v, want 1 miss, 1 shared, 0 hits", s)
	}
}

// TestDoCtxSpans checks the trace span a lookup emits: named after the
// cache, outcome attributed, compute's own spans nested underneath on a
// miss.
func TestDoCtxSpans(t *testing.T) {
	tr := metrics.NewTracer()
	metrics.InstallTracer(tr)
	defer metrics.InstallTracer(nil)

	c := Named[string, int]("traced")
	_, _, _ = c.DoCtx(context.Background(), "k", func(ctx context.Context) (int, error) {
		_, inner := metrics.StartSpan(ctx, "inner-work")
		inner.End()
		return 1, nil
	})
	_, _, _ = c.DoCtx(context.Background(), "k", func(context.Context) (int, error) { return 1, nil })

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (miss lookup, inner work, hit lookup)", len(spans))
	}
	var lookups []metrics.SpanRecord
	var inner *metrics.SpanRecord
	for i, s := range spans {
		switch s.Name {
		case "cache.traced":
			lookups = append(lookups, s)
		case "inner-work":
			inner = &spans[i]
		}
	}
	if len(lookups) != 2 || inner == nil {
		t.Fatalf("unexpected span names: %+v", spans)
	}
	outcomeOf := func(s metrics.SpanRecord) string {
		for _, l := range s.Attrs {
			if l.Key == "outcome" {
				return l.Value
			}
		}
		return ""
	}
	if outcomeOf(lookups[0]) != Miss || outcomeOf(lookups[1]) != Hit {
		t.Errorf("lookup outcomes %q, %q, want %q, %q",
			outcomeOf(lookups[0]), outcomeOf(lookups[1]), Miss, Hit)
	}
	if inner.Parent != lookups[0].ID {
		t.Errorf("compute span parent %d, want the miss lookup %d", inner.Parent, lookups[0].ID)
	}
}
