package simcache

import (
	"sync"
	"sync/atomic"
)

// Counters is a snapshot of a cache's activity.
type Counters struct {
	Hits    int64 // lookups answered from a completed entry
	Shared  int64 // lookups that joined an in-flight computation
	Misses  int64 // lookups that ran the computation
	Errors  int64 // computations that returned an error (not retained)
	Entries int64 // completed entries currently retained
	Bytes   int64 // estimated retained payload size (via SizeFunc)
}

// Cache is a process-wide, concurrency-safe memoization table with
// singleflight semantics: concurrent lookups of the same key run the
// computation once and share its result. Successful results are retained
// forever (experiment working sets are bounded by the workload suite);
// errors are returned to every waiter but not retained, so a transient
// failure can be retried.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]

	hits, shared, misses, errors atomic.Int64
	bytes                        atomic.Int64

	// SizeFunc estimates the retained size of a value for the Bytes
	// counter. Nil means sizes are not tracked.
	SizeFunc func(V) int64

	// disabled makes Do bypass the table entirely (the -nocache escape
	// hatch): every call computes fresh and retains nothing.
	disabled atomic.Bool
}

type entry[V any] struct {
	done chan struct{} // closed when the computation finishes
	val  V
	err  error
}

// New creates an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*entry[V])}
}

// SetDisabled toggles cache bypass.
func (c *Cache[K, V]) SetDisabled(d bool) { c.disabled.Store(d) }

// Disabled reports whether the cache is bypassed.
func (c *Cache[K, V]) Disabled() bool { return c.disabled.Load() }

// Do returns the cached value for key, computing it with compute if absent.
// Concurrent calls for the same key block on a single computation.
func (c *Cache[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	if c.disabled.Load() {
		return compute()
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			c.shared.Add(1)
			<-e.done
		}
		return e.val, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.val, e.err = compute()
	close(e.done)
	if e.err != nil {
		c.errors.Add(1)
		c.mu.Lock()
		delete(c.entries, key) // do not retain failures
		c.mu.Unlock()
	} else if c.SizeFunc != nil {
		c.bytes.Add(c.SizeFunc(e.val))
	}
	return e.val, e.err
}

// Get returns the completed value for key, if present.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c.disabled.Load() {
		return zero, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Counters {
	c.mu.Lock()
	n := int64(len(c.entries))
	c.mu.Unlock()
	return Counters{
		Hits:    c.hits.Load(),
		Shared:  c.shared.Load(),
		Misses:  c.misses.Load(),
		Errors:  c.errors.Load(),
		Entries: n,
		Bytes:   c.bytes.Load(),
	}
}

// Reset drops every entry and zeroes the counters.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.entries = make(map[K]*entry[V])
	c.mu.Unlock()
	c.hits.Store(0)
	c.shared.Store(0)
	c.misses.Store(0)
	c.errors.Store(0)
	c.bytes.Store(0)
}
