package simcache

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counters is a snapshot of a cache's activity. Snapshots are taken under
// the cache mutex, so the fields are mutually consistent (e.g. Hits +
// Shared + Misses counts exactly the lookups that had completed when the
// snapshot was taken) — expvar and /metrics scrapes mid-sweep see one
// coherent state, not a mix of before/after values.
type Counters struct {
	Hits    int64 // lookups answered from a completed entry
	Shared  int64 // lookups that joined an in-flight computation
	Misses  int64 // lookups that ran the computation
	Errors  int64 // computations that returned an error (not retained)
	Entries int64 // completed entries currently retained
	Bytes   int64 // estimated retained payload size (via SizeFunc)
}

// Cache outcome strings reported by DoCtx (and attached to cache spans).
const (
	Hit    = "hit"    // answered from a completed entry
	Shared = "shared" // joined another caller's in-flight computation
	Miss   = "miss"   // this call ran the computation
)

// Cache is a process-wide, concurrency-safe memoization table with
// singleflight semantics: concurrent lookups of the same key run the
// computation once and share its result. Successful results are retained
// forever (experiment working sets are bounded by the workload suite);
// errors are returned to every waiter but not retained, so a transient
// failure can be retried.
type Cache[K comparable, V any] struct {
	// Name labels this cache in trace spans and metrics ("benches",
	// "results", ...). Set once at construction time.
	Name string

	mu      sync.Mutex
	entries map[K]*entry[V]
	c       Counters // guarded by mu (minus Entries, derived from entries)

	// SizeFunc estimates the retained size of a value for the Bytes
	// counter. Nil means sizes are not tracked.
	SizeFunc func(V) int64

	// disabled makes Do bypass the table entirely (the -nocache escape
	// hatch): every call computes fresh and retains nothing.
	disabled atomic.Bool
}

type entry[V any] struct {
	done chan struct{} // closed when the computation finishes
	val  V
	err  error
}

// New creates an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*entry[V])}
}

// Named creates an empty cache labeled name in spans and metrics.
func Named[K comparable, V any](name string) *Cache[K, V] {
	c := New[K, V]()
	c.Name = name
	return c
}

// SetDisabled toggles cache bypass.
func (c *Cache[K, V]) SetDisabled(d bool) { c.disabled.Store(d) }

// Disabled reports whether the cache is bypassed.
func (c *Cache[K, V]) Disabled() bool { return c.disabled.Load() }

func (c *Cache[K, V]) spanName() string {
	if c.Name == "" {
		return "cache"
	}
	return "cache." + c.Name
}

// Do returns the cached value for key, computing it with compute if absent.
// Concurrent calls for the same key block on a single computation.
func (c *Cache[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	v, _, err := c.do(context.Background(), key, func(context.Context) (V, error) { return compute() })
	return v, err
}

// DoCtx is Do with outcome attribution and a trace span: the span covers
// the lookup itself — a completed-entry hit is near-instant, a shared
// lookup spans the singleflight wait, and a miss spans the computation
// (which receives the span's context, so its own spans nest underneath).
// With the cache disabled every call computes fresh and reports Miss.
func (c *Cache[K, V]) DoCtx(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, string, error) {
	ctx, sp := metrics.StartSpan(ctx, c.spanName())
	v, outcome, err := c.do(ctx, key, compute)
	sp.SetAttr("outcome", outcome)
	sp.End()
	return v, outcome, err
}

func (c *Cache[K, V]) do(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, string, error) {
	if c.disabled.Load() {
		v, err := compute(ctx)
		return v, Miss, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.c.Hits++
			c.mu.Unlock()
			return e.val, Hit, e.err
		default:
			c.c.Shared++
			c.mu.Unlock()
			<-e.done
			return e.val, Shared, e.err
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.c.Misses++
	c.mu.Unlock()

	e.val, e.err = compute(ctx)
	close(e.done)
	c.mu.Lock()
	if e.err != nil {
		c.c.Errors++
		delete(c.entries, key) // do not retain failures
	} else if c.SizeFunc != nil {
		c.c.Bytes += c.SizeFunc(e.val)
	}
	c.mu.Unlock()
	return e.val, Miss, e.err
}

// Get returns the completed value for key, if present.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c.disabled.Load() {
		return zero, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// Stats returns a consistent snapshot of the cache counters, taken in one
// critical section.
func (c *Cache[K, V]) Stats() Counters {
	c.mu.Lock()
	out := c.c
	out.Entries = int64(len(c.entries))
	c.mu.Unlock()
	return out
}

// Reset drops every entry and zeroes the counters.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.entries = make(map[K]*entry[V])
	c.c = Counters{}
	c.mu.Unlock()
}
