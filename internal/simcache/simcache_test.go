package simcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
)

func TestFingerprintStable(t *testing.T) {
	// Two separately constructed, structurally equal configs must agree.
	a := pipeline.Reduced()
	b := pipeline.Reduced()
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("equal configs fingerprint differently")
	}
	// Multi-part keys are order- and arity-sensitive.
	if Fingerprint(a, "x") == Fingerprint(a) {
		t.Error("extra part should change the key")
	}
	if Fingerprint("x", a) == Fingerprint(a, "x") {
		t.Error("part order should change the key")
	}
	// Repeated evaluation is stable.
	k := Fingerprint(a, "profile", 3)
	for i := 0; i < 10; i++ {
		if Fingerprint(pipeline.Reduced(), "profile", 3) != k {
			t.Fatal("fingerprint unstable across calls")
		}
	}
}

// TestFingerprintCollisionResistance flips one field at a time — including
// deeply nested ones — and checks every variant gets a distinct key. This
// is exactly the ablation-variant scenario: configs sharing a Name but
// differing in a single knob must not collide.
func TestFingerprintCollisionResistance(t *testing.T) {
	base := pipeline.Reduced()
	variants := []func(*pipeline.Config){
		func(c *pipeline.Config) { c.MaxMGIssue = 1 },
		func(c *pipeline.Config) { c.MaxMemMGIssue = 2 },
		func(c *pipeline.Config) { c.IssueWidth = 4 },
		func(c *pipeline.Config) { c.PhysRegs = 121 },
		func(c *pipeline.Config) { c.Hier.L1D.Size = 8 << 10 },
		func(c *pipeline.Config) { c.Hier.L2.Assoc = 8 },
		func(c *pipeline.Config) { c.Bpred.GshareBits = 13 },
		func(c *pipeline.Config) { c.StoreSetEntries = 512 },
		func(c *pipeline.Config) { c.MaxCycles = 1 },
	}
	seen := map[Key]int{Fingerprint(base): -1}
	for i, mutate := range variants {
		c := base // copy, Name unchanged
		mutate(&c)
		k := Fingerprint(c)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d despite differing fields", i, prev)
		}
		seen[k] = i
	}
	// Nil vs zero-valued pointer targets must differ.
	var nilCfg *pipeline.Config
	zero := pipeline.Config{}
	if Fingerprint(nilCfg) == Fingerprint(&zero) {
		t.Error("nil pointer collides with pointer to zero value")
	}
}

func TestFingerprintMapsAndSlices(t *testing.T) {
	m1 := map[string]int{"a": 1, "b": 2}
	m2 := map[string]int{"b": 2, "a": 1}
	if Fingerprint(m1) != Fingerprint(m2) {
		t.Error("map key order should not matter")
	}
	if Fingerprint(map[string]int{"a": 1}) == Fingerprint(map[string]int{"a": 2}) {
		t.Error("map value should matter")
	}
	if Fingerprint([]int{1, 2}) == Fingerprint([]int{2, 1}) {
		t.Error("slice order should matter")
	}
	if Fingerprint([]int(nil)) == Fingerprint([]int{}) {
		t.Error("nil and empty slice should differ")
	}
}

func TestCacheDo(t *testing.T) {
	c := New[string, int]()
	calls := 0
	get := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", get)
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Errorf("counters = %+v, want 1 miss / 2 hits / 1 entry", st)
	}
}

func TestCacheErrorsNotRetained(t *testing.T) {
	c := New[string, int]()
	fail := errors.New("boom")
	if _, err := c.Do("k", func() (int, error) { return 0, fail }); err != fail {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error = %d, %v", v, err)
	}
	st := c.Stats()
	if st.Errors != 1 || st.Entries != 1 {
		t.Errorf("counters = %+v, want 1 error / 1 entry", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := New[string, int]()
	c.SetDisabled(true)
	calls := 0
	for i := 0; i < 3; i++ {
		if v, _ := c.Do("k", func() (int, error) { calls++; return calls, nil }); v != calls {
			t.Fatal("disabled cache must compute fresh")
		}
	}
	if calls != 3 {
		t.Errorf("compute ran %d times, want 3 (bypass)", calls)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache must not retain entries")
	}
}

func TestCacheBytes(t *testing.T) {
	c := New[string, string]()
	c.SizeFunc = func(s string) int64 { return int64(len(s)) }
	c.Do("a", func() (string, error) { return "xxxx", nil })
	c.Do("b", func() (string, error) { return "yy", nil })
	if got := c.Stats().Bytes; got != 6 {
		t.Errorf("Bytes = %d, want 6", got)
	}
}

// TestCacheSingleflight checks that concurrent lookups of one key share a
// single computation (run with -race).
func TestCacheSingleflight(t *testing.T) {
	c := New[Key, int]()
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const goroutines = 16
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Do("shared", func() (int, error) {
				computes.Add(1)
				<-release
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	for g, v := range results {
		if v != 99 {
			t.Errorf("goroutine %d got %d", g, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != goroutines-1 {
		t.Errorf("counters = %+v", st)
	}
}

// TestCacheConcurrentMixedKeys hammers the cache with overlapping keys
// under -race.
func TestCacheConcurrentMixedKeys(t *testing.T) {
	c := New[Key, string]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Fingerprint("key", i%10)
				want := fmt.Sprintf("v%d", i%10)
				v, err := c.Do(key, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("Do(%d) = %q, %v", i%10, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries != 10 {
		t.Errorf("entries = %d, want 10", st.Entries)
	}
}
