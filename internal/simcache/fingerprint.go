// Package simcache provides the memoization layer under the experiment
// drivers: a concurrency-safe, singleflight cache keyed by stable
// fingerprints of configuration values. Experiment sweeps overlap heavily
// (the same workload preparation, baseline simulation, slack profile or
// selector evaluation appears in many figures); this package lets the
// orchestration layer compute each distinct piece of work exactly once.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Key is a stable content fingerprint usable as a cache-map key.
type Key string

// Short returns the key truncated for display and run-ledger records: 16
// hex digits (64 bits) — still collision-proof at any realistic history
// size, small enough to stamp into every persisted record.
func (k Key) Short() string {
	if len(k) > 16 {
		return string(k[:16])
	}
	return string(k)
}

// Fingerprint hashes a canonical encoding of the given values into a Key.
// Two calls with structurally equal values produce the same Key; values
// differing in any (arbitrarily nested) field produce different Keys with
// cryptographic confidence. Unlike name-based keys, the fingerprint cannot
// collide for ablation variants that share a Name but differ in a field.
//
// Supported value shapes: booleans, integers, floats, strings, structs
// (exported fields), pointers, slices, arrays, and maps with ordered
// (bool/int/uint/float/string) keys. Functions, channels and unexported
// struct fields are rejected with a panic: keys must never silently drop
// configuration state.
func Fingerprint(parts ...any) Key {
	h := sha256.New()
	var scratch [8]byte
	w := func(b []byte) { h.Write(b) }
	ws := func(s string) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
		w(scratch[:])
		w([]byte(s))
	}
	wu := func(tag byte, v uint64) {
		h.Write([]byte{tag})
		binary.LittleEndian.PutUint64(scratch[:], v)
		w(scratch[:])
	}
	var walk func(v reflect.Value)
	walk = func(v reflect.Value) {
		if !v.IsValid() {
			wu('z', 0) // typed nil interface slot
			return
		}
		switch v.Kind() {
		case reflect.Bool:
			if v.Bool() {
				wu('b', 1)
			} else {
				wu('b', 0)
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			wu('i', uint64(v.Int()))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
			wu('u', v.Uint())
		case reflect.Float32, reflect.Float64:
			wu('f', math.Float64bits(v.Float()))
		case reflect.String:
			h.Write([]byte{'s'})
			ws(v.String())
		case reflect.Ptr:
			if v.IsNil() {
				wu('p', 0)
				return
			}
			wu('p', 1)
			walk(v.Elem())
		case reflect.Interface:
			if v.IsNil() {
				wu('z', 0)
				return
			}
			h.Write([]byte{'I'})
			ws(v.Elem().Type().String())
			walk(v.Elem())
		case reflect.Struct:
			t := v.Type()
			h.Write([]byte{'T'})
			ws(t.String())
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				if !f.IsExported() {
					panic(fmt.Sprintf("simcache: fingerprint of %s would drop unexported field %s", t, f.Name))
				}
				ws(f.Name)
				walk(v.Field(i))
			}
		case reflect.Slice:
			if v.IsNil() {
				wu('l', 0)
				return
			}
			fallthrough
		case reflect.Array:
			wu('a', uint64(v.Len()))
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Map:
			wu('m', uint64(v.Len()))
			keys := v.MapKeys()
			sort.Slice(keys, func(i, j int) bool { return lessValue(keys[i], keys[j]) })
			for _, k := range keys {
				walk(k)
				walk(v.MapIndex(k))
			}
		default:
			panic(fmt.Sprintf("simcache: cannot fingerprint %s value", v.Kind()))
		}
	}
	for _, p := range parts {
		walk(reflect.ValueOf(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// lessValue orders map keys of a common orderable kind.
func lessValue(a, b reflect.Value) bool {
	switch a.Kind() {
	case reflect.Bool:
		return !a.Bool() && b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() < b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() < b.Uint()
	case reflect.Float32, reflect.Float64:
		return a.Float() < b.Float()
	case reflect.String:
		return a.String() < b.String()
	default:
		panic(fmt.Sprintf("simcache: cannot order map keys of kind %s", a.Kind()))
	}
}
