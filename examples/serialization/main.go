// Serialization anatomy: reproduces the worked examples of Figures 4 and 5
// of the paper on the real simulator.
//
// Part 1 (Figure 4) contrasts three mini-graph shapes on live hardware:
// a non-serializing chain, bounded serialization (the serializing input is
// upstream of the register output), and unbounded serialization (the
// serializing input is downstream of the output). Each is run as singletons
// and as a mini-graph; the cycle deltas show bounded vs unbounded damage.
//
// Part 2 (Figure 5) replays the paper's rule #1–#4 calculation on a
// profiled program and shows the Slack-Profile accept/reject decision.
package main

import (
	"fmt"
	"log"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/selector"
	"repro/internal/slack"
)

// buildShape builds a loop with (i) r9, a value produced by a long
// dependence chain that arrives late each iteration, (ii) r7, a pseudo-
// random value feeding a hard-to-predict branch, and (iii) a three-
// instruction candidate window whose register output r5 the branch
// consumes. The three shapes place the late serializing input differently:
//
//	shape 0: r9 feeds the first window instruction — not serializing.
//	shape 1: r9 feeds instruction 1, upstream of the output (Figure 4c,
//	         bounded): r5 waited for r9 as a singleton anyway.
//	shape 2: r5 is produced immediately from r7, and r9 feeds a later,
//	         independent instruction (Figure 4d, unbounded): aggregation
//	         makes the branch's source wait for r9 — delaying resolution
//	         of every mispredicted branch by the r9 chain latency.
func buildShape(name string, shape int) (*prog.Program, int) {
	b := prog.NewBuilder(name)
	b.Li(1, 2000)  // iterations
	b.Li(9, 7)     // slow-chain seed
	b.Li(7, 12345) // LCG state
	b.Li(8, 1103515245)
	b.Label("loop")
	// The late value: two chained multiplies.
	b.Mul(9, 9, 9)
	b.Mul(9, 9, 9)
	b.Ori(9, 9, 1)
	// The random value: one LCG step.
	b.Mul(7, 7, 8)
	b.Addi(7, 7, 12345)
	b.Srli(6, 7, 16)
	// The candidate window:
	start := b.Pos()
	switch shape {
	case 0: // non-serializing: the late input feeds instruction 0
		b.Add(3, 9, 6)
		b.Addi(4, 3, 2)
		b.Addi(5, 4, 3)
	case 1: // bounded: late input at instr 1, upstream of the output
		b.Addi(3, 6, 5)
		b.Add(4, 3, 9)
		b.Addi(5, 4, 3)
	case 2: // unbounded: output at instr 0, late input downstream
		b.Addi(5, 6, 3)     // output r5: ready immediately as a singleton
		b.Add(4, 9, 9)      // late input, independent of the output
		b.Stw(4, isa.SP, 0) // consumed internally
	}
	// The output feeds an unpredictable branch: any delay on r5 delays
	// misprediction recovery.
	b.Andi(10, 5, 1)
	b.Beqz(10, "skip")
	b.Addi(2, 2, 1)
	b.Label("skip")
	b.Add(2, 2, 5)
	b.Subi(1, 1, 1)
	b.Bnez(1, "loop")
	b.Mov(0, 2)
	b.Halt()
	return b.MustBuild(), start
}

func main() {
	fmt.Println("Part 1 — Figure 4: bounded vs unbounded serialization")
	fmt.Println()
	names := []string{"non-serializing chain", "bounded (input upstream of output)", "unbounded (input downstream)"}
	for shape := 0; shape < 3; shape++ {
		p, start := buildShape(fmt.Sprintf("shape%d", shape), shape)
		res, err := emu.Run(p, emu.Options{CollectTrace: true})
		if err != nil {
			log.Fatal(err)
		}
		// Force-select exactly the window of interest.
		var cand *minigraph.Candidate
		for _, c := range minigraph.Enumerate(p, minigraph.DefaultLimits()) {
			if c.Start == start && c.N == 3 {
				cand = c
			}
		}
		if cand == nil {
			log.Fatalf("shape %d: window not a candidate", shape)
		}
		freq := minigraph.Frequencies(p.NumInstrs(), indices(res.Trace))
		sel := minigraph.Select(p, []*minigraph.Candidate{cand}, freq, minigraph.DefaultSelectConfig())

		cfg := pipeline.Baseline()
		plain, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		mg, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{Selection: sel}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s serializing=%-5v bounded=%-5v singleton=%6d cyc   mini-graph=%6d cyc  (%+.1f%%)\n",
			names[shape], cand.Serializing(), cand.BoundedSerialization(),
			plain.Cycles, mg.Cycles, 100*(float64(mg.Cycles)/float64(plain.Cycles)-1))
	}

	fmt.Println()
	fmt.Println("Part 2 — Figure 5: the Slack-Profile rules on profiled runs")
	for _, sh := range []struct {
		shape int
		desc  string
	}{{1, "bounded shape"}, {2, "unbounded shape"}} {
		fmt.Printf("\n--- %s ---\n", sh.desc)
		p, start := buildShape("fig5", sh.shape)
		res, err := emu.Run(p, emu.Options{CollectTrace: true})
		if err != nil {
			log.Fatal(err)
		}
		acc := slack.NewAccumulator(p.Name, p.NumInstrs())
		if _, err := pipeline.Run(p, res.Trace, pipeline.Reduced(), pipeline.MGConfig{}, acc); err != nil {
			log.Fatal(err)
		}
		prof := acc.Profile()

		var cand *minigraph.Candidate
		for _, c := range minigraph.Enumerate(p, minigraph.DefaultLimits()) {
			if c.Start == start && c.N == 3 {
				cand = c
			}
		}
		if cand == nil {
			log.Fatal("window not a candidate")
		}
		issueMG, delay, ok := selector.Eval(p, cand, prof)
		if !ok {
			log.Fatal("no profile data")
		}
		fmt.Println("constituent        singleton-issue   mg-issue   delay (cycles, relative to block head)")
		for k := 0; k < cand.N; k++ {
			fmt.Printf("  %-16s %15.2f %10.2f %7.2f\n",
				p.Code[start+k], prof.Issue[start+k], issueMG[k], delay[k])
		}
		outIdx := start + cand.OutputIdx
		degrades := selector.Degrades(p, cand, prof, selector.ModeFull)
		fmt.Printf("output r%d local slack: %.2f cycles\n", p.Code[outIdx].Rd, prof.RegSlack[outIdx])
		fmt.Printf("rule #4 verdict: degrades=%v (Slack-Profile %s)\n",
			degrades, map[bool]string{true: "rejects", false: "accepts"}[degrades])
	}
}

func indices(tr []emu.Rec) []int32 {
	out := make([]int32, len(tr))
	for i, r := range tr {
		out[i] = r.Index
	}
	return out
}
