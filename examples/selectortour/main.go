// Selector tour: runs every selection policy in the repository over one
// workload and prints a side-by-side table — the quickest way to see the
// coverage/serialization trade-off each policy makes.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/selector"
)

func main() {
	name := flag.String("workload", "media.adpcm_enc", "workload to tour")
	input := flag.String("input", "large", "input set")
	flag.Parse()

	bench, err := core.PrepareByName(*name, *input)
	if err != nil {
		log.Fatal(err)
	}
	full := pipeline.Baseline()
	red := pipeline.Reduced()

	base, err := bench.RunSingleton(full)
	if err != nil {
		log.Fatal(err)
	}
	noMG, err := bench.RunSingleton(red)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s (%s): %d candidates, baseline %d cycles, reduced/no-MG %.3f\n\n",
		*name, *input, len(bench.Cands), base.Cycles, rel(base.Cycles, noMG.Cycles))
	fmt.Printf("%-28s %9s %9s %9s %10s %8s\n",
		"selector", "templates", "instances", "coverage", "reduced", "full")

	selectors := []*selector.Selector{
		selector.StructAll(),
		selector.StructNone(),
		selector.StructBounded(),
		selector.SlackProfile(),
		selector.SlackProfileDelay(),
		selector.SlackProfileSIAL(),
		selector.SlackProfileMem(),
		selector.SlackProfileGlobal(),
		selector.SlackDynamic(),
		selector.IdealSlackDynamic(),
		selector.IdealSlackDynamicDelay(),
	}
	for _, sel := range selectors {
		onRed, chosen, err := bench.Evaluate(sel, red, red)
		if err != nil {
			log.Fatal(err)
		}
		onFull, _, err := bench.Evaluate(sel, full, full)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9d %9d %8.1f%% %10.3f %8.3f\n",
			sel.Name(), chosen.NumTemplates, len(chosen.Instances),
			100*onRed.Coverage(), rel(base.Cycles, onRed.Cycles), rel(base.Cycles, onFull.Cycles))
	}
	fmt.Println("\nperformance is IPC relative to the fully-provisioned machine without mini-graphs")
}

func rel(base, cycles int64) float64 { return float64(base) / float64(cycles) }
