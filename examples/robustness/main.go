// Robustness (Figure 9): measures how sensitive Slack-Profile selection is
// to the machine the profile was collected on and to the program input set.
//
// Top: profiles cross-trained on a 2-way machine, an 8-way machine, and a
// quarter-size data memory system, applied to the reduced 3-way target.
// Bottom: profiles cross-trained on the "small" input set, applied to runs
// on the "large" set.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	top, err := core.Fig9Top(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(top.Perf.SummaryTable())
	self := top.Perf.Get("self-trained")
	for _, label := range []string{"cross 2-way", "cross 8-way", "cross dmem/4"} {
		cross := top.Perf.Get(label)
		var worst float64 = 1
		for prog, v := range cross.Values {
			if r := v / self.Values[prog]; r < worst {
				worst = r
			}
		}
		fmt.Printf("%-14s mean ratio vs self: %.4f, worst program: %.4f\n",
			label, cross.Mean()/self.Mean(), worst)
	}

	fmt.Println()
	bot, err := core.Fig9Bottom(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bot.Perf.SummaryTable())
	self = bot.Perf.Get("self-trained")
	cross := bot.Perf.Get("cross-input")
	var worst float64 = 1
	for prog, v := range cross.Values {
		if r := v / self.Values[prog]; r < worst {
			worst = r
		}
	}
	fmt.Printf("cross-input mean ratio vs self: %.4f, worst program: %.4f\n",
		cross.Mean()/self.Mean(), worst)
	fmt.Println("\nConclusion (matches the paper): slack profiles are robust to both")
	fmt.Println("gross microarchitectural change and input data sets.")
}
