// Quickstart: build a small program with the assembler API, discover and
// select mini-graphs, and compare singleton vs mini-graph execution on the
// fully-provisioned and reduced machines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minigraph"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/selector"
)

func main() {
	// A checksum loop: four independent two-instruction chains per
	// iteration — ideal mini-graph material.
	b := prog.NewBuilder("quickstart")
	data := b.Space(256 * 4)
	b.Li(1, data)
	b.Li(2, 256)
	b.Label("loop")
	b.Ldw(3, 1, 0)
	b.Addi(4, 3, 0x11)
	b.Xori(4, 4, 0x5A)
	b.Slli(5, 3, 3)
	b.Xori(5, 5, 0x33)
	b.Add(0, 0, 4)
	b.Add(0, 0, 5)
	b.Addi(1, 1, 4)
	b.Subi(2, 2, 1)
	b.Bnez(2, "loop")
	b.Halt()
	p := b.MustBuild()

	// Functional execution produces the committed trace.
	res, err := emu.Run(p, emu.Options{CollectTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d static instrs, %d dynamic, checksum %#x\n",
		p.NumInstrs(), res.DynInstrs, res.Checksum())

	// Discover mini-graph candidates and select with Struct-None (the
	// conservative serialization-free policy needs no profile).
	cands := minigraph.Enumerate(p, minigraph.DefaultLimits())
	pool := selector.StructNone().Pool(p, cands, nil)
	freq := minigraph.Frequencies(p.NumInstrs(), indicesOf(res.Trace))
	sel := minigraph.Select(p, pool, freq, minigraph.DefaultSelectConfig())
	fmt.Printf("candidates: %d total, %d serialization-free; selected %d instances (%d templates), %.1f%% coverage\n",
		len(cands), len(pool), len(sel.Instances), sel.NumTemplates, 100*sel.Coverage())

	// Time the four combinations.
	for _, cfg := range []pipeline.Config{pipeline.Baseline(), pipeline.Reduced()} {
		plain, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		mg, err := pipeline.Run(p, res.Trace, cfg, pipeline.MGConfig{Selection: sel}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s singleton: %6d cycles (IPC %.2f)   mini-graphs: %6d cycles (IPC %.2f, %+.1f%%)\n",
			cfg.Name, plain.Cycles, plain.IPC(), mg.Cycles, mg.IPC(),
			100*(float64(plain.Cycles)/float64(mg.Cycles)-1))
	}

	// The same flow in one call via the orchestration layer, on a real
	// workload from the suite.
	bench, err := core.PrepareByName("media.fir", "small")
	if err != nil {
		log.Fatal(err)
	}
	st, chosen, err := bench.Evaluate(selector.SlackProfile(), pipeline.Reduced(), pipeline.Reduced())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmedia.fir with Slack-Profile on the reduced machine: IPC %.2f, coverage %.1f%% (%d templates)\n",
		st.IPC(), 100*st.Coverage(), chosen.NumTemplates)
	_ = isa.NumRegs
}

func indicesOf(tr []emu.Rec) []int32 {
	out := make([]int32, len(tr))
	for i, r := range tr {
		out[i] = r.Index
	}
	return out
}
