// Limit study (Figure 8): exhaustively evaluates all 1024 combinations of
// the 10 hottest disjoint mini-graph candidates of two benchmarks — the
// paper's adpcm and a serialization-prone generated program — and compares
// each selector's choice against the best set found by exhaustive search.
//
// The second benchmark demonstrates the paper's "non-decomposability"
// observation: the best set excludes a mini-graph that per-candidate
// reasoning (even Slack-Profile's) accepts.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
)

func main() {
	for _, name := range []string{"media.adpcm_enc", "comm.gen01"} {
		lr, err := core.LimitStudy(name, "small", 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %d combinations of %d mini-graphs ===\n",
			lr.Workload, len(lr.Points), len(lr.Candidates))
		fmt.Println("the candidate pool:")
		for i, c := range lr.Candidates {
			fmt.Printf("  %2d: %s\n", i, c)
		}

		// Pareto view: best performance at each coverage decile.
		sort.Slice(lr.Points, func(i, j int) bool { return lr.Points[i].Coverage < lr.Points[j].Coverage })
		fmt.Println("\ncoverage-bucket best performance (the scatter's upper envelope):")
		const buckets = 8
		maxCov := lr.Points[len(lr.Points)-1].Coverage
		for b := 0; b < buckets; b++ {
			lo := maxCov * float64(b) / buckets
			hi := maxCov * float64(b+1) / buckets
			best := -1.0
			for _, pt := range lr.Points {
				if pt.Coverage >= lo && pt.Coverage <= hi && pt.RelPerf > best {
					best = pt.RelPerf
				}
			}
			if best > 0 {
				fmt.Printf("  coverage %4.1f%%..%4.1f%%: best %.3f\n", 100*lo, 100*hi, best)
			}
		}

		fmt.Println("\nselector choices vs exhaustive best:")
		fmt.Printf("  %-16s cov=%5.1f%% perf=%.3f (mask %010b)\n", "exhaustive-best",
			100*lr.Best.Coverage, lr.Best.RelPerf, lr.Best.Mask)
		for _, sel := range []string{"Struct-All", "Struct-None", "Struct-Bounded", "Slack-Profile"} {
			mask := lr.Choices[sel]
			var pt core.LimitPoint
			for _, q := range lr.Points {
				if q.Mask == mask {
					pt = q
				}
			}
			fmt.Printf("  %-16s cov=%5.1f%% perf=%.3f (mask %010b)\n", sel, 100*pt.Coverage, pt.RelPerf, mask)
		}
		fmt.Println()
	}
}
